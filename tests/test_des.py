"""Integration tests for the discrete-event experiment driver."""

import pytest

from repro.baselines import LessLogPolicy, RandomPolicy
from repro.core.errors import ConfigurationError
from repro.core.liveness import SetLiveness
from repro.engine.des_driver import DesExperiment
from repro.workloads import UniformDemand


def make_exp(m=5, target=13, total_rate=600.0, capacity=100.0, dead=(), **kw):
    liveness = SetLiveness.all_but(m, dead=list(dead))
    rates = UniformDemand().rates(total_rate, liveness)
    return DesExperiment(
        m=m, target=target, entry_rates=rates, capacity=capacity,
        dead=set(dead), **kw
    )


class TestDesBasics:
    def test_all_requests_served_without_overload(self):
        exp = make_exp(total_rate=50.0)
        result = exp.run(duration=5.0)
        assert result.replicas_created == 0
        assert result.faults == 0
        assert result.requests_served == result.requests_sent
        assert result.requests_sent == pytest.approx(250, rel=0.3)

    def test_overload_triggers_replication(self):
        exp = make_exp(total_rate=600.0, capacity=100.0)
        result = exp.run(duration=8.0)
        assert result.replicas_created >= 1
        assert result.requests_served == result.requests_sent

    def test_replication_reduces_observed_rate(self):
        exp = make_exp(total_rate=600.0, capacity=100.0)
        result = exp.run(duration=10.0)
        # The home initially absorbs everything...
        assert result.max_observed_rate > 300.0
        # ...but by the end of the workload the hottest node sits near
        # the detection threshold (window noise allows an excursion).
        assert result.final_max_rate < exp.detection_threshold * 1.5

    def test_deterministic_given_seed(self):
        a = make_exp(seed=5).run(duration=4.0)
        b = make_exp(seed=5).run(duration=4.0)
        assert a.replicas_created == b.replicas_created
        assert a.requests_sent == b.requests_sent
        assert a.replica_events == b.replica_events

    def test_hops_bounded_by_m(self):
        exp = make_exp(total_rate=100.0)
        result = exp.run(duration=3.0)
        assert result.hop_max <= exp.m

    def test_bad_duration_rejected(self):
        exp = make_exp()
        with pytest.raises(ConfigurationError):
            exp.run(duration=0.0)

    def test_bad_rate_shape_rejected(self):
        import numpy as np

        with pytest.raises(ConfigurationError):
            DesExperiment(m=5, target=0, entry_rates=np.ones(7))


class TestDesWithDeadNodes:
    def test_dead_target_still_serves(self):
        exp = make_exp(dead=(13, 9), total_rate=400.0)
        result = exp.run(duration=6.0)
        assert result.faults == 0
        assert result.requests_served == result.requests_sent

    def test_replicas_still_created_with_dead_nodes(self):
        exp = make_exp(dead=(13, 9, 20), total_rate=800.0)
        result = exp.run(duration=8.0)
        assert result.replicas_created >= 1
        assert result.faults == 0


class TestDesPolicies:
    def test_lesslog_first_replica_is_biggest_child(self):
        exp = make_exp(total_rate=600.0, policy=LessLogPolicy())
        result = exp.run(duration=6.0)
        assert result.replica_events
        _, source, target = result.replica_events[0]
        assert source == 13
        assert target == exp.tree.children(13)[0]

    def test_random_policy_needs_more_replicas(self):
        # Random placement sheds little load per replica, so given time
        # to converge it ends up with strictly more replicas.
        lesslog = make_exp(
            m=5, total_rate=600.0, policy=LessLogPolicy(), seed=2
        ).run(duration=40.0)
        rand = make_exp(
            m=5, total_rate=600.0, policy=RandomPolicy(), seed=2
        ).run(duration=40.0)
        assert rand.replicas_created > lesslog.replicas_created


class TestDesFailure:
    def test_home_failure_causes_faults(self):
        exp = make_exp(total_rate=200.0, capacity=1000.0)
        exp.fail_node(13, at_time=2.0)
        result = exp.run(duration=6.0)
        # After the crash every request becomes a fault (b=0, no replica).
        assert result.faults > 0
        assert result.requests_served < result.requests_sent

    def test_non_home_failure_is_transparent(self):
        exp = make_exp(total_rate=200.0, capacity=1000.0)
        # P(12)... pick a leaf in the tree of 13 that is not the home.
        leaf = next(
            p for p in range(32) if exp.tree.offspring_count(p) == 0 and p != 13
        )
        exp.fail_node(leaf, at_time=2.0)
        result = exp.run(duration=6.0)
        assert result.faults == 0
