"""Property-based tests (hypothesis) for the fluid engine.

Laws encoded:

* flow conservation: everything injected is served somewhere;
* holder monotonicity: adding a holder never increases anyone's load;
* capacity monotonicity: more capacity never needs more replicas;
* balance soundness: after a balanced run, no holder exceeds capacity;
* determinism: identical inputs give identical balance outcomes.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import LessLogPolicy
from repro.core.liveness import SetLiveness
from repro.core.tree import LookupTree
from repro.engine.fluid import FluidSimulation


@st.composite
def fluid_setup(draw):
    """A random tree, liveness pattern, and demand vector."""
    m = draw(st.integers(min_value=2, max_value=7))
    n = 1 << m
    r = draw(st.integers(min_value=0, max_value=n - 1))
    live = draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
    )
    liveness = SetLiveness(m, live)
    rates = np.zeros(n)
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=len(live),
            max_size=len(live),
        )
    )
    for pid, w in zip(sorted(live), weights):
        rates[pid] = w
    tree = LookupTree(r, m)
    return tree, liveness, rates


class TestFlowLaws:
    @given(fluid_setup())
    @settings(max_examples=80, deadline=None)
    def test_flow_conservation(self, setup):
        tree, liveness, rates = setup
        sim = FluidSimulation(tree, liveness, rates, capacity=10.0)
        flows = sim.compute_flows()
        assert flows.total_served() == pytest.approx(float(rates.sum()))

    @given(fluid_setup())
    @settings(max_examples=80, deadline=None)
    def test_forwarder_rates_sum_to_served(self, setup):
        tree, liveness, rates = setup
        sim = FluidSimulation(tree, liveness, rates, capacity=10.0)
        flows = sim.compute_flows()
        for holder, served in flows.served.items():
            contributed = sum(flows.forwarders.get(holder, {}).values())
            assert contributed == pytest.approx(served)

    @given(fluid_setup(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_adding_holder_never_increases_loads(self, setup, pick):
        tree, liveness, rates = setup
        sim = FluidSimulation(tree, liveness, rates, capacity=10.0)
        before = sim.compute_flows().served
        candidates = [p for p in liveness.live_pids() if p not in sim.holders]
        if not candidates:
            return
        sim.holders.add(candidates[pick % len(candidates)])
        after = sim.compute_flows().served
        for holder, load in before.items():
            assert after.get(holder, 0.0) <= load + 1e-9


class TestBalanceLaws:
    @given(fluid_setup())
    @settings(max_examples=40, deadline=None)
    def test_balanced_means_under_capacity_or_unresolved(self, setup):
        tree, liveness, rates = setup
        sim = FluidSimulation(
            tree, liveness, rates, capacity=50.0, rng=random.Random(0)
        )
        result = sim.balance(LessLogPolicy())
        over = [h for h, s in result.flows.served.items() if s > 50.0]
        assert sorted(over) == sorted(result.unresolved)

    @given(fluid_setup())
    @settings(max_examples=30, deadline=None)
    def test_more_capacity_never_more_replicas(self, setup):
        tree, liveness, rates = setup
        counts = []
        for capacity in (40.0, 80.0):
            sim = FluidSimulation(
                tree, liveness, rates, capacity=capacity, rng=random.Random(0)
            )
            counts.append(sim.balance(LessLogPolicy()).replicas_created)
        assert counts[1] <= counts[0]

    @given(fluid_setup())
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, setup):
        tree, liveness, rates = setup

        def run():
            sim = FluidSimulation(
                tree, liveness, rates, capacity=30.0, rng=random.Random(5)
            )
            result = sim.balance(LessLogPolicy())
            return result.replicas_created, sorted(result.holders)

        assert run() == run()

    @given(fluid_setup())
    @settings(max_examples=30, deadline=None)
    def test_placements_are_live_non_home_nodes(self, setup):
        tree, liveness, rates = setup
        sim = FluidSimulation(
            tree, liveness, rates, capacity=25.0, rng=random.Random(1)
        )
        result = sim.balance(LessLogPolicy())
        for placement in result.placements:
            assert liveness.is_live(placement.target)
            assert placement.target != sim.home
