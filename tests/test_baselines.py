"""Unit tests for replication policies and the Chord comparator."""

import random

import pytest

from repro.baselines import (
    ChordRing,
    LessLogPolicy,
    LogBasedPolicy,
    RandomPolicy,
    make_policy,
)
from repro.baselines.base import PlacementContext
from repro.core.errors import NoLiveNodeError
from repro.core.liveness import AllLive, SetLiveness
from repro.core.tree import LookupTree


@pytest.fixture
def tree4():
    return LookupTree(4, 4)


def ctx(seed=0, rates=None):
    return PlacementContext(rng=random.Random(seed), forwarder_rates=rates or {})


class TestLessLogPolicy:
    def test_picks_biggest_child_first(self, tree4):
        policy = LessLogPolicy()
        assert policy.choose(tree4, 4, AllLive(4), {4}, ctx()) == 5
        assert policy.choose(tree4, 4, AllLive(4), {4, 5}, ctx()) == 6

    def test_needs_no_forwarder_rates(self, tree4):
        # The whole point of the paper: identical choice with no log data.
        policy = LessLogPolicy()
        with_rates = policy.choose(
            tree4, 4, AllLive(4), {4}, ctx(rates={5: 1.0, 6: 99.0})
        )
        without = policy.choose(tree4, 4, AllLive(4), {4}, ctx())
        assert with_rates == without == 5


class TestLogBasedPolicy:
    def test_follows_the_rates(self, tree4):
        policy = LogBasedPolicy()
        rates = {5: 10.0, 6: 90.0, 0: 1.0}
        assert policy.choose(tree4, 4, AllLive(4), {4}, ctx(rates=rates)) == 6

    def test_skips_existing_holders(self, tree4):
        policy = LogBasedPolicy()
        rates = {5: 10.0, 6: 90.0}
        assert policy.choose(tree4, 4, AllLive(4), {4, 6}, ctx(rates=rates)) == 5

    def test_ignores_direct_client_key(self, tree4):
        policy = LogBasedPolicy()
        rates = {-1: 500.0, 12: 2.0}
        assert policy.choose(tree4, 4, AllLive(4), {4}, ctx(rates=rates)) == 12

    def test_none_when_nothing_forwards(self, tree4):
        policy = LogBasedPolicy()
        assert policy.choose(tree4, 4, AllLive(4), {4}, ctx(rates={-1: 5.0})) is None

    def test_respects_dead_nodes(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[0, 5])
        policy = LogBasedPolicy()
        # P(7) is in the advanced children list (spliced in for dead P(5)).
        rates = {7: 50.0, 6: 10.0}
        assert policy.choose(tree4, 4, liveness, {4}, ctx(rates=rates)) == 7


class TestRandomPolicy:
    def test_targets_live_non_holders(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[0, 1])
        policy = RandomPolicy()
        for seed in range(30):
            target = policy.choose(tree4, 4, liveness, {4, 5}, ctx(seed))
            assert target not in {0, 1, 4, 5}
            assert liveness.is_live(target)

    def test_none_when_everything_holds(self, tree4):
        policy = RandomPolicy()
        assert policy.choose(tree4, 4, AllLive(4), set(range(16)), ctx()) is None

    def test_seeded_determinism(self, tree4):
        policy = RandomPolicy()
        a = policy.choose(tree4, 4, AllLive(4), {4}, ctx(9))
        b = policy.choose(tree4, 4, AllLive(4), {4}, ctx(9))
        assert a == b


class TestRegistry:
    def test_make_policy(self):
        assert isinstance(make_policy("lesslog"), LessLogPolicy)
        assert isinstance(make_policy("log-based"), LogBasedPolicy)
        assert isinstance(make_policy("random"), RandomPolicy)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("oracle")


class TestChordRing:
    def test_successor_wraps(self):
        ring = ChordRing(4, [2, 9, 14])
        assert ring.successor(3) == 9
        assert ring.successor(9) == 9
        assert ring.successor(15) == 2

    def test_lookup_reaches_owner(self):
        ring = ChordRing(6, list(range(0, 64, 3)))
        for start in ring.nodes:
            for key in (0, 17, 40, 63):
                path = ring.lookup_path(start, key)
                assert path[0] == start
                assert path[-1] == ring.successor(key)

    def test_lookup_hops_logarithmic(self):
        ring = ChordRing(8, list(range(256)))
        hops = [ring.lookup_hops(s, 200) for s in range(0, 256, 7)]
        assert max(hops) <= 8

    def test_lookup_from_foreign_node_raises(self):
        ring = ChordRing(4, [1, 2])
        with pytest.raises(NoLiveNodeError):
            ring.lookup_path(7, 0)

    def test_add_remove_node(self):
        ring = ChordRing(4, [1, 8])
        ring.add_node(4)
        assert ring.successor(3) == 4
        ring.remove_node(4)
        assert ring.successor(3) == 8

    def test_cannot_empty_ring(self):
        ring = ChordRing(4, [1])
        with pytest.raises(NoLiveNodeError):
            ring.remove_node(1)

    def test_empty_ring_rejected(self):
        with pytest.raises(NoLiveNodeError):
            ChordRing(4, [])

    def test_finger_table_size(self):
        ring = ChordRing(5, [0, 7, 20])
        assert len(ring.finger_table(7)) == 5
