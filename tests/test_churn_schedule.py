"""Seed stability + serialization round-trip for ChurnSchedule.

The fuzzer (repro.verify) leans on ``ChurnSchedule.generate`` being a
pure function of its seed: the same seed must yield the *identical*
event sequence on every run and platform, and a schedule must survive a
JSON round-trip bit-exactly — otherwise a recorded failing scenario
would not replay.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ChurnEvent, ChurnKind, ChurnSchedule, LessLogSystem
from repro.core.errors import ConfigurationError


def _generate(seed, m=4, duration=50.0, rate=0.4):
    system = LessLogSystem.build(m=m)
    return ChurnSchedule.generate(system, duration=duration, rate=rate, seed=seed)


class TestSeedStability:
    @pytest.mark.parametrize("seed", [0, 1, 7, 12345])
    def test_same_seed_same_sequence(self, seed):
        a = _generate(seed)
        b = _generate(seed)
        assert a.events == b.events

    def test_different_seeds_differ(self):
        assert _generate(1).events != _generate(2).events

    def test_golden_fingerprint(self):
        # Pins the exact sequence for seed 7 so cross-platform or
        # cross-version drift in the generator (which would invalidate
        # every recorded fuzzer scenario) fails loudly, not silently.
        events = _generate(7).events
        fingerprint = [
            (round(e.time, 6), e.kind.value, e.pid) for e in events[:5]
        ]
        assert fingerprint == [
            (5.528567, "leave", 1),
            (11.540224, "join", 1),
            (13.199299, "leave", 3),
            (20.56426, "leave", 10),
            (27.941585, "leave", 7),
        ]
        assert len(events) == 15

    def test_generation_is_consumption_independent(self):
        # Applying one schedule must not perturb generating the next.
        system = LessLogSystem.build(m=4)
        first = ChurnSchedule.generate(system, duration=20.0, rate=0.5, seed=3)
        first.apply_all(system)
        again = ChurnSchedule.generate(
            LessLogSystem.build(m=4), duration=20.0, rate=0.5, seed=3
        )
        assert first.events == again.events


events_strategy = st.lists(
    st.builds(
        ChurnEvent,
        time=st.floats(
            min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
        ),
        kind=st.sampled_from(list(ChurnKind)),
        pid=st.integers(min_value=0, max_value=255),
    ),
    max_size=30,
)


class TestSerialization:
    @given(events=events_strategy)
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, events):
        schedule = ChurnSchedule(events)
        back = ChurnSchedule.from_json(schedule.to_json())
        assert back.events == schedule.events
        # to_dicts() is already time-sorted, same as the schedule.
        assert back.to_dicts() == schedule.to_dicts()

    def test_generated_round_trip(self):
        schedule = _generate(11)
        assert ChurnSchedule.from_json(schedule.to_json()).events == schedule.events

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_nonfinite_time_rejected(self, bad):
        with pytest.raises(ConfigurationError, match="finite"):
            ChurnEvent.from_dict({"time": bad, "kind": "join", "pid": 1})
