"""Trace-level integration tests for the DES.

Attach a Tracer to the transport, run a small experiment, and verify
per-request properties of the actual message flow — the strongest
end-to-end check that routing behaves like the paper's GETFILE.
"""

from collections import defaultdict

import pytest

from repro.core.liveness import SetLiveness
from repro.engine.des_driver import CLIENT, DesExperiment
from repro.sim.trace import Tracer
from repro.workloads import UniformDemand

M = 5
TARGET = 13


@pytest.fixture(scope="module")
def traced_run():
    liveness = SetLiveness.all_but(M, dead=[9])
    rates = UniformDemand().rates(150.0, liveness)
    exp = DesExperiment(
        m=M, target=TARGET, entry_rates=rates, capacity=10_000.0,
        dead={9}, seed=3,
    )
    tracer = Tracer()
    exp.transport.tracer = tracer
    result = exp.run(duration=5.0)
    return exp, tracer, result


def _request_chains(tracer):
    """request_id -> ordered list of GET sends (src, dst)."""
    chains = defaultdict(list)
    for record in tracer.of_kind("send"):
        if record.data["msg_kind"] == "get":
            chains[record.data["request_id"]].append(
                (record.data["src"], record.data["dst"])
            )
    return chains


class TestRequestChains:
    def test_every_request_has_contiguous_chain(self, traced_run):
        _, tracer, _ = traced_run
        chains = _request_chains(tracer)
        assert chains
        for hops in chains.values():
            assert hops[0][0] == CLIENT
            for (_, dst), (nxt_src, _) in zip(hops, hops[1:]):
                assert dst == nxt_src  # forwarded from where it arrived

    def test_chains_climb_vids(self, traced_run):
        exp, tracer, _ = traced_run
        for hops in _request_chains(tracer).values():
            vids = [exp.tree.vid_of(dst) for _, dst in hops]
            assert all(a < b for a, b in zip(vids, vids[1:]))

    def test_chains_avoid_dead_nodes(self, traced_run):
        _, tracer, _ = traced_run
        for hops in _request_chains(tracer).values():
            assert all(dst != 9 for _, dst in hops)

    def test_every_request_gets_exactly_one_reply(self, traced_run):
        _, tracer, result = traced_run
        replies = defaultdict(int)
        for record in tracer.of_kind("send"):
            if record.data["msg_kind"] == "get_reply":
                replies[record.data["request_id"]] += 1
        chains = _request_chains(tracer)
        assert len(replies) == len(chains) == result.requests_sent
        assert all(count == 1 for count in replies.values())

    def test_reply_goes_to_client(self, traced_run):
        _, tracer, _ = traced_run
        for record in tracer.of_kind("send"):
            if record.data["msg_kind"] == "get_reply":
                assert record.data["dst"] == CLIENT

    def test_chain_lengths_bounded(self, traced_run):
        _, tracer, _ = traced_run
        for hops in _request_chains(tracer).values():
            assert len(hops) <= M + 1

    def test_no_drops_in_static_run(self, traced_run):
        _, tracer, _ = traced_run
        assert tracer.of_kind("drop") == []
