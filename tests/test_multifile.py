"""Tests for the multi-file shared-capacity fluid engine."""

import random

import numpy as np
import pytest

from repro.baselines import LessLogPolicy
from repro.core.errors import ConfigurationError
from repro.core.hashing import Psi
from repro.core.liveness import AllLive
from repro.engine.multifile import FileSpec, MultiFileFluid
from repro.workloads import UniformDemand, ZipfDemand

M = 6
N = 1 << M


def make_files(count, total_rate, demand_factory=None, m=M):
    liveness = AllLive(m)
    if demand_factory is None:
        demand_factory = lambda i: UniformDemand()
    psi = Psi(m)
    per_file = total_rate / count
    return [
        FileSpec(
            name=f"file-{i}",
            target=psi(f"file-{i}"),
            entry_rates=demand_factory(i).rates(per_file, liveness),
        )
        for i in range(count)
    ]


def make_engine(count=4, total_rate=800.0, capacity=100.0, demand_factory=None):
    liveness = AllLive(M)
    return MultiFileFluid(
        M,
        liveness,
        make_files(count, total_rate, demand_factory),
        capacity=capacity,
        rng=random.Random(0),
    )


class TestConstruction:
    def test_duplicate_names_rejected(self):
        files = make_files(2, 100.0)
        files[1].name = files[0].name
        with pytest.raises(ConfigurationError):
            MultiFileFluid(M, AllLive(M), files, capacity=10.0)

    def test_empty_catalog_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiFileFluid(M, AllLive(M), [], capacity=10.0)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiFileFluid(M, AllLive(M), make_files(1, 10.0), capacity=0.0)


class TestLoads:
    def test_loads_sum_to_total_demand(self):
        engine = make_engine(count=4, total_rate=800.0)
        assert sum(engine.node_loads().values()) == pytest.approx(800.0)

    def test_distinct_targets_spread_load(self):
        engine = make_engine(count=8, total_rate=400.0)
        loads = engine.node_loads()
        # Each file's home carries ~50 req/s; homes are spread by ψ.
        assert len(loads) >= 5

    def test_balanced_catalog_needs_no_replicas(self):
        engine = make_engine(count=8, total_rate=400.0, capacity=100.0)
        result = engine.balance(LessLogPolicy())
        assert result.replicas_created <= 1  # ψ collisions may stack two homes
        assert result.balanced


class TestBalance:
    def test_balance_clears_overload(self):
        engine = make_engine(count=3, total_rate=1500.0, capacity=100.0)
        result = engine.balance(LessLogPolicy())
        assert result.balanced
        assert max(result.node_loads.values()) <= 100.0
        assert result.replicas_created >= 3

    def test_placements_name_held_files(self):
        engine = make_engine(count=3, total_rate=900.0)
        result = engine.balance(LessLogPolicy())
        for name, source, target in result.placements:
            assert target in engine.sims[name].holders

    def test_replicas_of_accounting(self):
        engine = make_engine(count=3, total_rate=900.0)
        result = engine.balance(LessLogPolicy())
        assert sum(result.replicas_of(f"file-{i}") for i in range(3)) == (
            result.replicas_created
        )
        assert engine.total_replicas() == result.replicas_created

    def test_skewed_popularity(self):
        # One hot file dominating demand: the hot file gets nearly all
        # the replicas.
        liveness = AllLive(M)
        psi = Psi(M)
        uniform = UniformDemand()
        files = [
            FileSpec("hot", psi("hot"), uniform.rates(1600.0, liveness)),
            FileSpec("cold", psi("cold"), uniform.rates(40.0, liveness)),
        ]
        engine = MultiFileFluid(M, liveness, files, capacity=100.0,
                                rng=random.Random(0))
        result = engine.balance(LessLogPolicy())
        assert result.balanced
        assert result.replicas_of("hot") > 5 * max(result.replicas_of("cold"), 1) or (
            result.replicas_of("cold") == 0
        )

    def test_zipf_demand_balances(self):
        # One independent popularity permutation per file — a shared
        # permutation stacks every file's hot direct traffic on one
        # node, which no placement scheme can shed.
        engine = make_engine(
            count=4, total_rate=1200.0,
            demand_factory=lambda i: ZipfDemand(s=1.0, seed=3 + i),
        )
        result = engine.balance(LessLogPolicy())
        assert result.balanced

    def test_unresolvable_direct_load_reported(self):
        # All demand for one file enters at a single node that is also
        # its target: nothing can be shed.
        liveness = AllLive(M)
        psi = Psi(M)
        target = psi("stuck")
        rates = np.zeros(N)
        rates[target] = 500.0
        engine = MultiFileFluid(
            M, liveness,
            [FileSpec("stuck", target, rates)],
            capacity=100.0,
        )
        result = engine.balance(LessLogPolicy())
        assert not result.balanced
        assert result.unresolved == [target]
