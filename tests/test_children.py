"""Unit tests for children lists (repro.core.children)."""

import pytest

from repro.core.children import (
    advanced_children_list,
    basic_children_list,
    has_live_node_above,
    live_subtree_size,
)
from repro.core.liveness import AllLive, SetLiveness
from repro.core.tree import LookupTree


@pytest.fixture
def tree4():
    return LookupTree(4, 4)


class TestBasicChildrenList:
    def test_paper_figure2(self, tree4):
        # §2.2: children list of P(4) is (P(5), P(6), P(0), P(12)).
        assert basic_children_list(tree4, 4) == [5, 6, 0, 12]

    def test_leaf(self, tree4):
        # P(12) is VID 0111 — a leaf in the tree of P(4).
        assert basic_children_list(tree4, 12) == []


class TestAdvancedChildrenList:
    def test_equals_basic_when_all_live(self, tree4):
        live = AllLive(4)
        for k in range(16):
            assert advanced_children_list(tree4, k, live) == basic_children_list(
                tree4, k
            )

    def test_paper_figure3(self, tree4):
        # §3: with P(0), P(5) dead, the children list of P(4) is
        # (P(6), P(7), P(1), P(12), P(13), P(8)), sorted by the VID.
        liveness = SetLiveness.all_but(4, dead=[0, 5])
        assert advanced_children_list(tree4, 4, liveness) == [6, 7, 1, 12, 13, 8]

    def test_recursive_splicing(self, tree4):
        # Kill P(5) and its spliced child P(7) (VID 1100): P(7)'s own
        # children P(15) (0100) and P(3) (1000) must be spliced in.
        liveness = SetLiveness.all_but(4, dead=[0, 5, 7])
        got = advanced_children_list(tree4, 4, liveness)
        assert 3 in got and 15 in got
        assert 5 not in got and 7 not in got and 0 not in got

    def test_only_live_members(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[0, 5, 6, 13])
        for pid in advanced_children_list(tree4, 4, liveness):
            assert liveness.is_live(pid)

    def test_vid_descending_order(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[0, 5, 7])
        got = advanced_children_list(tree4, 4, liveness)
        vids = [tree4.vid_of(p) for p in got]
        assert vids == sorted(vids, reverse=True)

    def test_empty_when_whole_subtree_dead(self, tree4):
        # Kill every strict descendant of P(6) (VID 1101) and P(6)'s
        # children list becomes empty.
        dead = [p for p in tree4.iter_subtree(6) if p != 6]
        liveness = SetLiveness.all_but(4, dead=dead)
        assert advanced_children_list(tree4, 6, liveness) == []

    def test_covers_live_fringe_exactly_once(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[0, 5, 7, 13])
        got = advanced_children_list(tree4, 4, liveness)
        assert len(got) == len(set(got))


class TestLiveSubtreeSize:
    def test_all_live(self, tree4):
        assert live_subtree_size(tree4, 4, AllLive(4)) == 16
        assert live_subtree_size(tree4, 5, AllLive(4)) == 8

    def test_with_dead(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[0, 5])
        # Subtree of P(5) has 8 slots, one (P(5) itself) dead -> 7 live.
        assert live_subtree_size(tree4, 5, liveness) == 7

    def test_leaf(self, tree4):
        assert live_subtree_size(tree4, 12, AllLive(4)) == 1


class TestHasLiveNodeAbove:
    def test_root_never(self, tree4):
        assert not has_live_node_above(tree4, 4, AllLive(4))

    def test_everyone_else_in_full_system(self, tree4):
        live = AllLive(4)
        for k in range(16):
            if k != 4:
                assert has_live_node_above(tree4, k, live)

    def test_paper_overload_example(self, tree4):
        # §3: P(4), P(5) dead, P(6) overloaded: no live node has a VID
        # above P(6)'s (1101) -> requests may come from anywhere.
        liveness = SetLiveness.all_but(4, dead=[4, 5])
        assert not has_live_node_above(tree4, 6, liveness)
        # But P(7) (VID 1100) does see P(6) above it.
        assert has_live_node_above(tree4, 7, liveness)
