"""Tests for the §4 identity reduction (SvidLiveness / identity_tree).

The fault-tolerant model's claim — "all file operations described in
Section 3 still work inside each subtree" — is realised by mapping a
subtree to a width-(m-b) system whose PIDs *are* subtree VIDs.  These
tests pin the isomorphism.
"""

import pytest

from repro.core.children import advanced_children_list, basic_children_list
from repro.core.liveness import AllLive, SetLiveness
from repro.core.replication import choose_replica_target
from repro.core.routing import resolve_route
from repro.core.subtree import SubtreeView, SvidLiveness, identity_tree
from repro.core.tree import LookupTree


@pytest.fixture
def view():
    return SubtreeView(LookupTree(4, 4), 2, 0b01)


class TestIdentityTree:
    def test_pid_equals_vid(self, view):
        itree = identity_tree(view)
        for svid in range(1 << view.width):
            assert itree.vid_of(svid) == svid
            assert itree.pid_of(svid) == svid

    def test_root_is_all_ones(self, view):
        itree = identity_tree(view)
        assert itree.root == (1 << view.width) - 1

    def test_structure_matches_subtree_view(self, view):
        # Children computed in svid space match SubtreeView.children
        # mapped through pid_of_svid.
        itree = identity_tree(view)
        for svid in range(1 << view.width):
            pid = view.pid_of_svid(svid)
            expected = view.children(pid)
            got = [view.pid_of_svid(c) for c in itree.children(svid)]
            assert got == expected


class TestSvidLiveness:
    def test_all_live(self, view):
        sliveness = SvidLiveness(view, AllLive(4))
        assert sliveness.live_count() == 4
        assert list(sliveness.live_pids()) == [0, 1, 2, 3]
        assert sliveness.m == view.width

    def test_reflects_member_deaths(self, view):
        dead_member = view.members()[1]
        liveness = SetLiveness.all_but(4, dead=[dead_member])
        sliveness = SvidLiveness(view, liveness)
        dead_svid = view.svid_of(dead_member)
        assert not sliveness.is_live(dead_svid)
        assert sliveness.live_count() == 3

    def test_ignores_foreign_deaths(self, view):
        foreign = next(p for p in range(16) if not view.contains(p))
        sliveness = SvidLiveness(view, SetLiveness.all_but(4, dead=[foreign]))
        assert sliveness.live_count() == 4


class TestReducedAlgorithms:
    def test_children_list_through_reduction(self, view):
        # The advanced children list computed in svid space and mapped
        # back equals the §2 basic list when everyone is alive.
        itree = identity_tree(view)
        sliveness = SvidLiveness(view, AllLive(4))
        root_svid = (1 << view.width) - 1
        reduced = [
            view.pid_of_svid(s)
            for s in advanced_children_list(itree, root_svid, sliveness)
        ]
        assert reduced == [
            view.pid_of_svid(s)
            for s in basic_children_list(itree, root_svid)
        ]

    def test_routes_through_reduction_match_view(self, view):
        liveness = SetLiveness.all_but(4, dead=[view.members()[0]])
        itree = identity_tree(view)
        sliveness = SvidLiveness(view, liveness)
        for member in view.members():
            if not liveness.is_live(member):
                continue
            reduced = [
                view.pid_of_svid(s)
                for s in resolve_route(itree, view.svid_of(member), sliveness)
            ]
            assert reduced == view.resolve_route(member, liveness)

    def test_placement_through_reduction_stays_in_subtree(self, view):
        itree = identity_tree(view)
        sliveness = SvidLiveness(view, AllLive(4))
        root_svid = (1 << view.width) - 1
        decision = choose_replica_target(
            itree, root_svid, sliveness, holders={root_svid}
        )
        assert decision.target is not None
        assert view.contains(view.pid_of_svid(decision.target))


class TestReductionAcrossAllSubtrees:
    def test_partition_and_width(self):
        tree = LookupTree(9, 5)
        for b in (1, 2, 3):
            seen = set()
            for sid in range(1 << b):
                v = SubtreeView(tree, b, sid)
                assert identity_tree(v).m == 5 - b
                seen.update(v.members())
            assert seen == set(range(32))
