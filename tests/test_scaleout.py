"""Tests for the multi-process scale-out runtime
(``repro.runtime.scaleout``): bootstrap/address-book service, per-node
worker processes, and the kill -9 crash supervisor.

The deterministic pieces — wire codecs for the control plane, address
resolution, supervisor validation — run in tier-1.  Everything that
forks real worker OS processes and drives them over loopback TCP
carries the ``runtime`` marker and runs in CI's scaleout-smoke job.

The process-spawning tests are plain sync functions on purpose: the
supervisor must fork the fleet *before* the parent owns a running
event loop, so each test calls ``launch()`` first and only then enters
``asyncio.run``.
"""

import asyncio
import json

import pytest

from repro.core.errors import ConfigurationError, MembershipError
from repro.runtime import (
    LoadGenerator,
    PeerUnreachableError,
    RuntimeClient,
    RuntimeConfig,
    verify_snapshot,
)
from repro.runtime.addressing import dial_peer
from repro.runtime.scaleout import (
    ScaleoutEndpoint,
    ScaleoutSupervisor,
    config_from_wire,
    config_to_wire,
)
from repro.runtime.scaleout.worker import _book_from_wire

# ---------------------------------------------------------------------------
# control-plane codecs and validation (deterministic, tier-1)
# ---------------------------------------------------------------------------


class TestControlCodecs:
    def test_config_round_trips_through_json_profile(self):
        config = RuntimeConfig(
            m=5, b=2, seed=11, tcp=True, capacity=12.5,
            wire_version=2, v1_pids=(1, 3), fixed_frames=True,
        )
        wired = config_to_wire(config)
        assert wired == json.loads(json.dumps(wired))
        back = config_from_wire(wired)
        assert back == config

    def test_infinite_fields_survive_the_json_sentinel(self):
        config = RuntimeConfig(m=3, b=1, slo_budget=float("inf"),
                               idle_timeout=float("inf"))
        back = config_from_wire(config_to_wire(config))
        assert back.slo_budget == float("inf")
        assert back.idle_timeout == float("inf")

    def test_book_from_wire_restores_int_pids_and_address_tuples(self):
        book = _book_from_wire({"0": ["127.0.0.1", 4000], "7": ["::1", 4001]})
        assert book == {0: ("127.0.0.1", 4000), 7: ("::1", 4001)}


class TestAddressing:
    def test_missing_book_entry_is_the_dead_peer_signal(self):
        with pytest.raises(PeerUnreachableError, match=r"P\(9\)"):
            asyncio.run(dial_peer(None, 9))

    def test_refused_connection_is_the_dead_peer_signal(self):
        import socket

        sock = socket.create_server(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nobody listens here any more
        with pytest.raises(PeerUnreachableError, match=rf"P\(4\).*failed"):
            asyncio.run(dial_peer(("127.0.0.1", port), 4))


class TestSupervisorValidation:
    def test_unknown_spawn_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="fork"):
            ScaleoutSupervisor(RuntimeConfig(m=3, b=1), n_nodes=4, mode="thread")

    def test_kill_of_unbooted_node_rejected(self):
        supervisor = ScaleoutSupervisor(RuntimeConfig(m=3, b=1), n_nodes=4)
        with pytest.raises(MembershipError):
            asyncio.run(supervisor.kill(2))


# ---------------------------------------------------------------------------
# real worker processes over loopback TCP (runtime marker)
# ---------------------------------------------------------------------------

def _fleet_config(**overrides) -> RuntimeConfig:
    base = dict(m=3, b=1, seed=5, tcp=True, capacity=40.0,
                service_time=0.002, cooldown=0.05)
    base.update(overrides)
    return RuntimeConfig(**base)


@pytest.mark.runtime
class TestWorkerLifecycle:
    def test_clean_boot_serve_sigterm_drain_ships_goodbye_snapshots(self):
        """Boot -> serve -> SIGTERM drain -> goodbye: every worker ships
        its final store/word snapshot, and the central snapshot built
        from worker stores replays conformant."""
        config = _fleet_config()
        supervisor = ScaleoutSupervisor(config, n_nodes=8, mode="fork")
        host, port = supervisor.launch()

        async def drive() -> tuple:
            await supervisor.start(boot_timeout=60.0)
            endpoint = await ScaleoutEndpoint.connect(host, port)
            files = [f"life-{i}" for i in range(5)]
            client = await RuntimeClient(endpoint, min(endpoint.nodes)).connect()
            for name in files:
                await client.insert(name, payload=f"payload:{name}")
            await client.close()
            gen = LoadGenerator(endpoint, files, seed=3, timeout=5.0)
            report = await gen.run_open_loop(rps=60, duration=0.8)
            await gen.close()
            await endpoint.quiesce()
            snapshot, stats = await supervisor.bootstrap.collect_snapshot()
            await endpoint.close()
            await supervisor.shutdown()
            return report, snapshot, stats

        report, snapshot, stats = asyncio.run(drive())
        assert report.conserved and report.completed > 0
        conformance = verify_snapshot(snapshot)
        assert conformance.ok, conformance.mismatches
        # Every worker terminated cleanly and shipped a goodbye body.
        assert sorted(supervisor.bootstrap.goodbyes) == list(range(8))
        for pid, body in supervisor.bootstrap.goodbyes.items():
            assert {"store", "word", "served"} <= set(body)
            assert pid in body["word"]
        assert sum(stats.served_by_node.values()) == report.completed

    def test_worker_subcommand_spawn_mode_boots_and_drains(self):
        """Subprocess spawn exercises the ``lesslog worker`` entrypoint
        for every node in the fleet."""
        config = _fleet_config()
        supervisor = ScaleoutSupervisor(config, n_nodes=6, mode="subprocess")
        host, port = supervisor.launch()

        async def drive() -> object:
            await supervisor.start(boot_timeout=60.0)
            endpoint = await ScaleoutEndpoint.connect(host, port)
            client = await RuntimeClient(endpoint, min(endpoint.nodes)).connect()
            await client.insert("sub-0", payload="p")
            got = await client.get("sub-0")
            await client.close()
            await endpoint.quiesce()
            await endpoint.close()
            await supervisor.shutdown()
            return got

        got = asyncio.run(drive())
        assert got.payload == "p"
        assert sorted(supervisor.bootstrap.goodbyes) == list(range(6))


@pytest.mark.runtime
class TestKillDashNine:
    def test_kill9_mid_burst_with_inherited_subtree_replays_conformant(self):
        """kill -9 a worker mid-burst; after the autopsy the victim's
        subtree is inherited per §5 and the centrally collected
        snapshot replays against the oracle with zero diffs."""
        config = _fleet_config(seed=7)
        supervisor = ScaleoutSupervisor(config, n_nodes=8, mode="fork")
        host, port = supervisor.launch()

        async def drive() -> tuple:
            await supervisor.start(boot_timeout=60.0)
            endpoint = await ScaleoutEndpoint.connect(host, port)
            files = [f"crash-{i}" for i in range(6)]
            client = await RuntimeClient(endpoint, min(endpoint.nodes)).connect()
            for name in files:
                await client.insert(name, payload=f"payload:{name}")
            await client.close()
            gen = LoadGenerator(endpoint, files, seed=9, timeout=5.0)
            burst = asyncio.ensure_future(gen.run_open_loop(rps=80, duration=1.2))
            await asyncio.sleep(0.5)
            victim = sorted(endpoint.nodes)[2]
            victim_os = supervisor.bootstrap.ospid_of(victim)
            await supervisor.kill(victim)
            report = await burst
            await gen.close()
            # The process is provably gone (reaped) before the autopsy.
            assert supervisor.alive().get(victim_os) is False
            await supervisor.bootstrap.announce_crash(victim)
            await endpoint.quiesce()
            snapshot, _stats = await supervisor.bootstrap.collect_snapshot()
            await endpoint.close()
            await supervisor.shutdown()
            return victim, report, snapshot

        victim, report, snapshot = asyncio.run(drive())
        assert report.conserved
        conformance = verify_snapshot(snapshot)
        assert conformance.ok, conformance.mismatches
        # The victim is dead in the authoritative word and its files
        # were inherited by live holders.
        assert victim not in snapshot.live_pids
        for name, holders in snapshot.placement.items():
            assert holders, f"{name} lost all replicas"
            assert victim not in holders
        # Survivors ship goodbyes; the kill -9 victim cannot.
        survivors = sorted(set(range(8)) - {victim})
        assert sorted(supervisor.bootstrap.goodbyes) == survivors

    def test_killed_worker_disappears_from_client_books(self):
        config = _fleet_config(seed=11)
        supervisor = ScaleoutSupervisor(config, n_nodes=6, mode="fork")
        host, port = supervisor.launch()

        async def drive() -> tuple:
            await supervisor.start(boot_timeout=60.0)
            endpoint = await ScaleoutEndpoint.connect(host, port)
            before = set(endpoint.nodes)
            victim = sorted(endpoint.nodes)[1]
            await supervisor.kill(victim)
            deadline = asyncio.get_running_loop().time() + 5.0
            while (victim in endpoint.nodes
                   and asyncio.get_running_loop().time() < deadline):
                await asyncio.sleep(0.01)
            after = set(endpoint.nodes)
            await supervisor.bootstrap.announce_crash(victim)
            await endpoint.quiesce()
            await endpoint.close()
            await supervisor.shutdown()
            return victim, before, after

        victim, before, after = asyncio.run(drive())
        assert victim in before
        assert after == before - {victim}
