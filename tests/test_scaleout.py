"""Tests for the multi-process scale-out runtime
(``repro.runtime.scaleout``): bootstrap/address-book service, per-node
worker processes, the kill -9 crash supervisor, and the sharded load
driver with its exactly-merging measurement ledgers.

The deterministic pieces — wire codecs for the control plane, batch
frames, address resolution, supervisor validation, the merge algebra
of ``LoadReport``/``LatencyHistogram``, and the worker holder-hint
cache — run in tier-1.  Everything that forks real worker OS processes
and drives them over loopback TCP carries the ``runtime`` marker and
runs in CI's scaleout-smoke job.

The process-spawning tests are plain sync functions on purpose: the
supervisor must fork the fleet *before* the parent owns a running
event loop, so each test calls ``launch()`` first and only then enters
``asyncio.run``.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError, MembershipError
from repro.runtime import (
    LoadGenerator,
    PeerUnreachableError,
    RuntimeClient,
    RuntimeConfig,
    verify_snapshot,
)
from repro.runtime.addressing import dial_peer
from repro.runtime.client import LatencyHistogram, LoadReport
from repro.runtime.node import NodeServer
from repro.runtime.scaleout import (
    ScaleoutEndpoint,
    ScaleoutSupervisor,
    ShardedLoadDriver,
    config_from_wire,
    config_to_wire,
    decode_batch,
    encode_batch,
)
from repro.runtime.scaleout.worker import WorkerRuntime, _BoundedCache, _book_from_wire

# ---------------------------------------------------------------------------
# control-plane codecs and validation (deterministic, tier-1)
# ---------------------------------------------------------------------------


class TestControlCodecs:
    def test_config_round_trips_through_json_profile(self):
        config = RuntimeConfig(
            m=5, b=2, seed=11, tcp=True, capacity=12.5,
            wire_version=2, v1_pids=(1, 3), fixed_frames=True,
        )
        wired = config_to_wire(config)
        assert wired == json.loads(json.dumps(wired))
        back = config_from_wire(wired)
        assert back == config

    def test_infinite_fields_survive_the_json_sentinel(self):
        config = RuntimeConfig(m=3, b=1, slo_budget=float("inf"),
                               idle_timeout=float("inf"))
        back = config_from_wire(config_to_wire(config))
        assert back.slo_budget == float("inf")
        assert back.idle_timeout == float("inf")

    def test_book_from_wire_restores_int_pids_and_address_tuples(self):
        book = _book_from_wire({"0": ["127.0.0.1", 4000], "7": ["::1", 4001]})
        assert book == {0: ("127.0.0.1", 4000), 7: ("::1", 4001)}


class TestBatchFrames:
    def test_batch_round_trips_bodies_in_order(self):
        bodies = [
            {"op": "served", "n": 3},
            {"op": "client_sent", "sent": {"0": 2}},
            {"op": "ping"},
        ]
        frame = encode_batch(bodies)
        assert frame == json.loads(json.dumps(frame))
        assert decode_batch(frame) == bodies

    def test_non_batch_body_decodes_to_singleton(self):
        body = {"op": "decide", "name": "f"}
        assert decode_batch(body) == [body]

    def test_malformed_batch_members_are_dropped(self):
        assert decode_batch({"op": "batch", "ops": "nope"}) == []
        assert decode_batch({"op": "batch"}) == []
        mixed = {"op": "batch", "ops": [{"op": "a"}, 7, None, {"op": "b"}]}
        assert decode_batch(mixed) == [{"op": "a"}, {"op": "b"}]


# ---------------------------------------------------------------------------
# sharded-measurement merge algebra (deterministic, tier-1)
# ---------------------------------------------------------------------------

_COUNTER_FIELDS = LoadReport._COUNTERS

shard_samples = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=5.0,
                       allow_nan=False, allow_infinity=False),
             max_size=40),
    min_size=1, max_size=4,
)


class TestMergeExactness:
    @given(shards=shard_samples)
    @settings(max_examples=60, deadline=None)
    def test_histogram_merge_equals_concatenated_recording(self, shards):
        merged = LatencyHistogram()
        for samples in shards:
            part = LatencyHistogram()
            for s in samples:
                part.record(s)
            merged.merge(part)
        whole = LatencyHistogram()
        for s in (x for samples in shards for x in samples):
            whole.record(s)
        assert merged.counts == whole.counts
        assert merged.total == whole.total == sum(map(len, shards))

    @given(shards=shard_samples, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_report_merge_is_bit_identical_to_concatenated_samples(
        self, shards, data
    ):
        """Merging K shard reports == one report over the concatenated
        samples: same counters, same histogram, same wire form — the
        exactness claim the sharded driver's verdicts rest on."""
        counter_val = st.integers(min_value=0, max_value=50)
        parts: list[LoadReport] = []
        for samples in shards:
            part = LoadReport(duration=data.draw(
                st.floats(min_value=0.1, max_value=2.0, allow_nan=False)
            ))
            for field_name in _COUNTER_FIELDS:
                setattr(part, field_name, data.draw(counter_val))
            for s in samples:
                part.latencies.append(s)
                part.hist.record(s)
            parts.append(part)

        merged = LoadReport()
        for part in parts:
            merged.merge(part)

        whole = LoadReport(duration=max(p.duration for p in parts))
        for field_name in _COUNTER_FIELDS:
            setattr(whole, field_name, sum(getattr(p, field_name) for p in parts))
        for part in parts:
            for s in part.latencies:
                whole.latencies.append(s)
                whole.hist.record(s)

        assert merged.to_wire() == whole.to_wire()
        assert merged.p50 == whole.p50 and merged.p99 == whole.p99

    @given(shards=shard_samples)
    @settings(max_examples=30, deadline=None)
    def test_wire_round_trip_is_exact_through_json(self, shards):
        """`to_wire` -> JSON text -> `from_wire` loses nothing: floats
        round-trip doubles exactly, so a shard's report survives its
        result pipe bit-for-bit."""
        report = LoadReport(duration=1.0)
        for samples in shards:
            for s in samples:
                report.latencies.append(s)
                report.hist.record(s)
        report.requests = report.completed = len(report.latencies)
        report.served_by_node = {1: 4, 6: 2}
        back = LoadReport.from_wire(json.loads(json.dumps(report.to_wire())))
        assert back.to_wire() == report.to_wire()
        assert back.latencies == report.latencies
        assert back.served_by_node == report.served_by_node


class TestShardedDriverValidation:
    def test_rejects_degenerate_parameters(self):
        good = dict(host="h", port=1, files=["f"], shards=2,
                    rps=10.0, duration=1.0)
        ShardedLoadDriver(**good)
        for bad in (
            {**good, "shards": 0},
            {**good, "rps": 0.0},
            {**good, "duration": -1.0},
            {**good, "files": []},
        ):
            with pytest.raises(ConfigurationError):
                ShardedLoadDriver(**bad)

    def test_entry_shard_validation_in_load_generator(self):
        class _Stub:
            nodes = frozenset({0, 1})
            epoch = 0

        for bad in ((0, 0), (2, 2), (-1, 3)):
            with pytest.raises(ConfigurationError):
                LoadGenerator(_Stub(), ["f"], entry_shard=bad)


# ---------------------------------------------------------------------------
# worker holder-hint cache (deterministic, tier-1)
# ---------------------------------------------------------------------------


def _bare_runtime(pid: int = 1, n: int = 8) -> WorkerRuntime:
    config = RuntimeConfig(m=3, b=1, tcp=True)
    runtime = WorkerRuntime(config, pid=pid, live=list(range(n)), link=None)
    runtime.node = NodeServer(pid, runtime)  # type: ignore[arg-type]
    return runtime


class TestHolderHintCache:
    def test_cached_live_holder_becomes_the_redirect_hint_not_minus_one(self):
        """The regression the cache exists for: a shed at a worker whose
        cache knows a live alternative holder must emit that pid — the
        old own-store-only view said ``holders() == {}`` and handed the
        client ``-1`` (a blind reroute) on every shed."""
        runtime = _bare_runtime()
        node = runtime.node
        assert node._redirect_hint("hot") == -1  # cold cache: the old world
        runtime.note_holders("hot", [3, 5])
        assert runtime.holders("hot") == {3, 5}
        for _ in range(16):
            assert node._redirect_hint("hot") in (3, 5)

    def test_stale_cached_holder_is_filtered_by_the_status_word(self):
        """A cached holder this node knows is dead is never handed out
        (`_redirect_hint` intersects with the word); one the node does
        NOT know is dead flows to the client, whose FINDLIVENODE
        reroute — gated by the stale-redirect invariant — absorbs it."""
        runtime = _bare_runtime()
        node = runtime.node
        runtime.note_holders("f", [4])
        node.word.register_dead(4)
        assert node._redirect_hint("f") == -1

    def test_book_push_eviction_scrubs_cache_and_keeps_word(self):
        runtime = _bare_runtime()
        runtime.note_holders("a", [2, 6])
        runtime.note_holders("b", [6])
        runtime.note_evicted({6})
        assert runtime.holders("a") == {2}
        assert runtime.holders("b") == set()
        # Silent-kill discipline: eviction never flips the status word.
        assert runtime.word.is_live(6)

    def test_own_store_and_malformed_deltas(self):
        from repro.node.storage import FileOrigin

        runtime = _bare_runtime(pid=2)
        runtime.node.store.store("mine", "p", 1, FileOrigin.INSERTED)
        assert runtime.holders("mine") == {2}
        runtime.note_holders("mine", ["not-a-pid", object()])  # ignored
        assert runtime.holders("mine") == {2}
        runtime.note_holders("mine", [])  # empty delta clears the entry
        assert runtime.holders("mine") == {2}

    def test_bounded_cache_evicts_oldest_at_capacity(self):
        cache = _BoundedCache(3)
        for k in range(3):
            cache[k] = k
        cache[3] = 3  # evicts 0, the oldest
        assert set(cache) == {1, 2, 3}
        cache[1] = 99  # update in place: no eviction
        assert set(cache) == {1, 2, 3} and cache[1] == 99
        with pytest.raises(ValueError):
            _BoundedCache(0)


class TestAddressing:
    def test_missing_book_entry_is_the_dead_peer_signal(self):
        with pytest.raises(PeerUnreachableError, match=r"P\(9\)"):
            asyncio.run(dial_peer(None, 9))

    def test_refused_connection_is_the_dead_peer_signal(self):
        import socket

        sock = socket.create_server(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nobody listens here any more
        with pytest.raises(PeerUnreachableError, match=rf"P\(4\).*failed"):
            asyncio.run(dial_peer(("127.0.0.1", port), 4))


class TestSupervisorValidation:
    def test_unknown_spawn_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="fork"):
            ScaleoutSupervisor(RuntimeConfig(m=3, b=1), n_nodes=4, mode="thread")

    def test_kill_of_unbooted_node_rejected(self):
        supervisor = ScaleoutSupervisor(RuntimeConfig(m=3, b=1), n_nodes=4)
        with pytest.raises(MembershipError):
            asyncio.run(supervisor.kill(2))


# ---------------------------------------------------------------------------
# real worker processes over loopback TCP (runtime marker)
# ---------------------------------------------------------------------------

def _fleet_config(**overrides) -> RuntimeConfig:
    base = dict(m=3, b=1, seed=5, tcp=True, capacity=40.0,
                service_time=0.002, cooldown=0.05)
    base.update(overrides)
    return RuntimeConfig(**base)


@pytest.mark.runtime
class TestWorkerLifecycle:
    def test_clean_boot_serve_sigterm_drain_ships_goodbye_snapshots(self):
        """Boot -> serve -> SIGTERM drain -> goodbye: every worker ships
        its final store/word snapshot, and the central snapshot built
        from worker stores replays conformant."""
        config = _fleet_config()
        supervisor = ScaleoutSupervisor(config, n_nodes=8, mode="fork")
        host, port = supervisor.launch()

        async def drive() -> tuple:
            await supervisor.start(boot_timeout=60.0)
            endpoint = await ScaleoutEndpoint.connect(host, port)
            files = [f"life-{i}" for i in range(5)]
            client = await RuntimeClient(endpoint, min(endpoint.nodes)).connect()
            for name in files:
                await client.insert(name, payload=f"payload:{name}")
            await client.close()
            gen = LoadGenerator(endpoint, files, seed=3, timeout=5.0)
            report = await gen.run_open_loop(rps=60, duration=0.8)
            await gen.close()
            await endpoint.quiesce()
            snapshot, stats = await supervisor.bootstrap.collect_snapshot()
            await endpoint.close()
            await supervisor.shutdown()
            return report, snapshot, stats

        report, snapshot, stats = asyncio.run(drive())
        assert report.conserved and report.completed > 0
        conformance = verify_snapshot(snapshot)
        assert conformance.ok, conformance.mismatches
        # Every worker terminated cleanly and shipped a goodbye body.
        assert sorted(supervisor.bootstrap.goodbyes) == list(range(8))
        for pid, body in supervisor.bootstrap.goodbyes.items():
            assert {"store", "word", "served"} <= set(body)
            assert pid in body["word"]
        assert sum(stats.served_by_node.values()) == report.completed

    def test_worker_subcommand_spawn_mode_boots_and_drains(self):
        """Subprocess spawn exercises the ``lesslog worker`` entrypoint
        for every node in the fleet."""
        config = _fleet_config()
        supervisor = ScaleoutSupervisor(config, n_nodes=6, mode="subprocess")
        host, port = supervisor.launch()

        async def drive() -> object:
            await supervisor.start(boot_timeout=60.0)
            endpoint = await ScaleoutEndpoint.connect(host, port)
            client = await RuntimeClient(endpoint, min(endpoint.nodes)).connect()
            await client.insert("sub-0", payload="p")
            got = await client.get("sub-0")
            await client.close()
            await endpoint.quiesce()
            await endpoint.close()
            await supervisor.shutdown()
            return got

        got = asyncio.run(drive())
        assert got.payload == "p"
        assert sorted(supervisor.bootstrap.goodbyes) == list(range(6))


@pytest.mark.runtime
class TestKillDashNine:
    def test_kill9_mid_burst_with_inherited_subtree_replays_conformant(self):
        """kill -9 a worker mid-burst; after the autopsy the victim's
        subtree is inherited per §5 and the centrally collected
        snapshot replays against the oracle with zero diffs."""
        config = _fleet_config(seed=7)
        supervisor = ScaleoutSupervisor(config, n_nodes=8, mode="fork")
        host, port = supervisor.launch()

        async def drive() -> tuple:
            await supervisor.start(boot_timeout=60.0)
            endpoint = await ScaleoutEndpoint.connect(host, port)
            files = [f"crash-{i}" for i in range(6)]
            client = await RuntimeClient(endpoint, min(endpoint.nodes)).connect()
            for name in files:
                await client.insert(name, payload=f"payload:{name}")
            await client.close()
            gen = LoadGenerator(endpoint, files, seed=9, timeout=5.0)
            burst = asyncio.ensure_future(gen.run_open_loop(rps=80, duration=1.2))
            await asyncio.sleep(0.5)
            victim = sorted(endpoint.nodes)[2]
            victim_os = supervisor.bootstrap.ospid_of(victim)
            await supervisor.kill(victim)
            report = await burst
            await gen.close()
            # The process is provably gone (reaped) before the autopsy.
            assert supervisor.alive().get(victim_os) is False
            await supervisor.bootstrap.announce_crash(victim)
            await endpoint.quiesce()
            snapshot, _stats = await supervisor.bootstrap.collect_snapshot()
            await endpoint.close()
            await supervisor.shutdown()
            return victim, report, snapshot

        victim, report, snapshot = asyncio.run(drive())
        assert report.conserved
        conformance = verify_snapshot(snapshot)
        assert conformance.ok, conformance.mismatches
        # The victim is dead in the authoritative word and its files
        # were inherited by live holders.
        assert victim not in snapshot.live_pids
        for name, holders in snapshot.placement.items():
            assert holders, f"{name} lost all replicas"
            assert victim not in holders
        # Survivors ship goodbyes; the kill -9 victim cannot.
        survivors = sorted(set(range(8)) - {victim})
        assert sorted(supervisor.bootstrap.goodbyes) == survivors

    def test_killed_worker_disappears_from_client_books(self):
        config = _fleet_config(seed=11)
        supervisor = ScaleoutSupervisor(config, n_nodes=6, mode="fork")
        host, port = supervisor.launch()

        async def drive() -> tuple:
            await supervisor.start(boot_timeout=60.0)
            endpoint = await ScaleoutEndpoint.connect(host, port)
            before = set(endpoint.nodes)
            victim = sorted(endpoint.nodes)[1]
            await supervisor.kill(victim)
            deadline = asyncio.get_running_loop().time() + 5.0
            while (victim in endpoint.nodes
                   and asyncio.get_running_loop().time() < deadline):
                await asyncio.sleep(0.01)
            after = set(endpoint.nodes)
            await supervisor.bootstrap.announce_crash(victim)
            await endpoint.quiesce()
            await endpoint.close()
            await supervisor.shutdown()
            return victim, before, after

        victim, before, after = asyncio.run(drive())
        assert victim in before
        assert after == before - {victim}


@pytest.mark.runtime
class TestShardedBurst:
    def test_two_shard_burst_merges_exactly_and_quiesces(self):
        """Two forked driver processes over disjoint entry partitions:
        the merged ledger conserves, equals the per-shard sum, the
        fleet's serve totals match the merged completions, every worker
        goodbyes, and the snapshot replays conformant — the full
        sharded measurement path in one lifecycle."""
        config = _fleet_config(seed=13)
        supervisor = ScaleoutSupervisor(config, n_nodes=8, mode="fork")
        host, port = supervisor.launch()
        files = [f"shard-{i}" for i in range(4)]
        driver = ShardedLoadDriver(
            host, port, files, shards=2, rps=60, duration=0.8, seed=13,
            inherited_sockets=[supervisor.listen_socket],
        )
        driver.launch()

        async def drive() -> tuple:
            await supervisor.start(boot_timeout=60.0)
            endpoint = await ScaleoutEndpoint.connect(host, port)
            client = await RuntimeClient(endpoint, min(endpoint.nodes)).connect()
            for name in files:
                await client.insert(name, payload=f"payload:{name}")
            await client.close()
            await endpoint.drain()
            driver.start()
            report = await driver.collect()
            report.served_by_node = await endpoint.served_counts()
            await endpoint.quiesce()
            snapshot, stats = await supervisor.bootstrap.collect_snapshot()
            await endpoint.close()
            await supervisor.shutdown()
            return report, snapshot, stats

        try:
            report, snapshot, stats = asyncio.run(drive())
        finally:
            driver.kill()
        assert report.conserved and report.completed > 0
        assert len(driver.shard_reports) == 2
        for field_name in LoadReport._COUNTERS:
            assert getattr(report, field_name) == sum(
                getattr(part, field_name) for part in driver.shard_reports
            )
        assert report.hist.total == sum(
            part.hist.total for part in driver.shard_reports
        )
        # Each shard generated real load through its own partition.
        assert all(part.completed > 0 for part in driver.shard_reports)
        # The fleet's serve totals account for every merged completion.
        assert sum(stats.served_by_node.values()) == report.completed
        conformance = verify_snapshot(snapshot)
        assert conformance.ok, conformance.mismatches
        assert sorted(supervisor.bootstrap.goodbyes) == list(range(8))
