"""DES tests for gossip-mode membership (§5.1 status-word broadcasts).

In gossip mode each node routes on its own status word; membership
changes propagate only through REGISTER_* broadcasts, so there is a
real window of stale views after a crash.
"""

import pytest

from repro.core.liveness import SetLiveness
from repro.engine.des_driver import DesExperiment
from repro.net.message import Message, MessageKind
from repro.workloads import UniformDemand


def make_exp(m=5, target=13, dead=(), total_rate=300.0, capacity=10_000.0, **kw):
    liveness = SetLiveness.all_but(m, dead=list(dead))
    rates = UniformDemand().rates(total_rate, liveness)
    return DesExperiment(
        m=m, target=target, entry_rates=rates, capacity=capacity,
        dead=set(dead), gossip=True, **kw
    )


class TestGossipSteadyState:
    def test_behaves_like_oracle_without_churn(self):
        exp = make_exp()
        result = exp.run(duration=5.0)
        assert result.faults == 0
        assert result.requests_served == result.requests_sent

    def test_views_start_consistent(self):
        exp = make_exp(dead=(9,))
        for node in exp.nodes.values():
            assert node.membership == exp.membership
            assert node.membership is not exp.membership  # own copies


class TestGossipFailure:
    def test_stale_views_drop_messages_then_converge(self):
        # Crash a mid-tree node.  Until the detector broadcast lands,
        # peers keep routing through the corpse and the transport drops
        # those messages; afterwards everyone routes around it.
        exp = make_exp(total_rate=500.0, detection_delay=1.0)
        victim = exp.tree.children(13)[0]
        exp.fail_node(victim, at_time=2.0)
        result = exp.run(duration=8.0)
        dropped = exp.metrics.counter("transport.dropped.dead").value
        assert dropped > 0  # the stale window is real
        # After convergence every view marks the victim dead.
        for node in exp.nodes.values():
            assert not node.membership.is_live(victim)
        # Lost requests are bounded by roughly the stale window's traffic.
        lost = result.requests_sent - result.requests_served - result.faults
        assert lost <= 500.0 * 2.5

    def test_faster_detection_loses_less(self):
        losses = {}
        for delay in (0.2, 2.0):
            exp = make_exp(total_rate=500.0, detection_delay=delay, seed=3)
            victim = exp.tree.children(13)[0]
            exp.fail_node(victim, at_time=2.0)
            result = exp.run(duration=8.0)
            losses[delay] = (
                result.requests_sent - result.requests_served - result.faults
            )
        assert losses[0.2] <= losses[2.0]

    def test_oracle_mode_has_no_stale_window(self):
        liveness = SetLiveness.all_but(5, dead=[])
        rates = UniformDemand().rates(500.0, liveness)
        exp = DesExperiment(
            m=5, target=13, entry_rates=rates, capacity=10_000.0, gossip=False
        )
        victim = exp.tree.children(13)[0]
        exp.fail_node(victim, at_time=2.0)
        result = exp.run(duration=6.0)
        # Oracle views update instantly: the only possible losses are
        # messages already in flight at the crash instant.
        assert exp.metrics.counter("transport.dropped.dead").value <= 3
        assert result.requests_sent - result.requests_served <= 3


class TestGossipJoin:
    def test_join_broadcast_converges_views(self):
        exp = make_exp(dead=(7,))
        exp.join_node(7, at_time=2.0)
        exp.run(duration=6.0)
        for node in exp.nodes.values():
            assert node.membership.is_live(7)

    def test_joiner_adopts_neighbour_word(self):
        exp = make_exp(dead=(7, 9))
        exp.join_node(7, at_time=2.0)
        exp.run(duration=6.0)
        # The joiner learned about P(9)'s deadness from its neighbour.
        assert not exp.nodes[7].membership.is_live(9)


class TestMembershipAgentUnit:
    def test_handle_only_membership_kinds(self):
        from repro.node.gossip import MembershipAgent
        from repro.node.membership import StatusWord
        from repro.net.transport import Transport
        from repro.sim.engine import Engine

        agent = MembershipAgent(0, StatusWord(4, live=[0, 1]), Transport(Engine()))
        assert agent.handle(Message(MessageKind.REGISTER_LIVE, 1, 0, payload=5))
        assert agent.word.is_live(5)
        assert agent.handle(Message(MessageKind.REGISTER_DEAD, 1, 0, payload=1))
        assert not agent.word.is_live(1)
        assert not agent.handle(Message(MessageKind.GET, 1, 0))

    def test_broadcast_counts_and_excludes_self(self):
        from repro.node.gossip import MembershipAgent
        from repro.node.membership import StatusWord
        from repro.net.transport import Transport
        from repro.sim.engine import Engine

        engine = Engine()
        transport = Transport(engine)
        received = []
        for pid in (1, 2):
            transport.register(pid, lambda m, pid=pid: received.append((pid, m.payload)))
        agent = MembershipAgent(0, StatusWord(4, live=[0, 1, 2]), transport)
        sent = agent.broadcast(MessageKind.REGISTER_DEAD, 2)
        engine.run()
        assert sent == 1  # 2 was deregistered locally first, self skipped
        assert received == [(1, 2)]

    def test_broadcast_rejects_non_membership_kind(self):
        from repro.node.gossip import MembershipAgent
        from repro.node.membership import StatusWord
        from repro.net.transport import Transport
        from repro.sim.engine import Engine

        agent = MembershipAgent(0, StatusWord(4, live=[0]), Transport(Engine()))
        with pytest.raises(ValueError):
            agent.broadcast(MessageKind.GET, 1)
