"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis import SweepResult, render_chart, render_sweep_chart


class TestRenderChart:
    def test_basic_dimensions(self):
        text = render_chart(
            [0, 1, 2], {"a": [0, 5, 10]}, width=20, height=5
        )
        lines = text.splitlines()
        # 5 canvas rows + x-axis rule + x labels + legend.
        assert len(lines) == 8
        assert "a" in lines[-1]

    def test_markers_placed_at_extremes(self):
        text = render_chart([0, 10], {"s": [0, 100]}, width=11, height=4)
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        assert rows[0].rstrip().endswith("o")   # max at top-right
        assert rows[-1].lstrip().startswith("o")  # min at bottom-left

    def test_two_series_get_distinct_markers(self):
        text = render_chart(
            [0, 1], {"a": [0, 1], "b": [1, 0]}, width=10, height=4
        )
        assert "o = a" in text and "x = b" in text

    def test_header_labels(self):
        text = render_chart([0, 1], {"a": [1, 2]}, y_label="replicas", x_label="req/s")
        assert text.splitlines()[0] == "replicas vs req/s"

    def test_empty_inputs(self):
        assert render_chart([], {}) == "(no data)"

    def test_constant_series_ok(self):
        text = render_chart([0, 1, 2], {"flat": [5, 5, 5]}, width=10, height=3)
        assert "o" in text

    def test_ragged_series_rejected(self):
        with pytest.raises(ValueError):
            render_chart([0, 1], {"a": [1]})


class TestRenderSweepChart:
    def test_renders_aligned_sweep(self):
        sweep = SweepResult("t", "x", "y")
        for x in (1, 2, 3):
            sweep.add("a", x, x * 2)
            sweep.add("b", x, x * 3)
        text = render_sweep_chart(sweep)
        assert "y vs x" in text
        assert "o = a" in text

    def test_partial_series_skipped(self):
        sweep = SweepResult("t", "x", "y")
        sweep.add("full", 1, 1)
        sweep.add("full", 2, 2)
        sweep.add("partial", 1, 5)
        text = render_sweep_chart(sweep)
        assert "full" in text and "partial" not in text

    def test_no_aligned_series(self):
        sweep = SweepResult("t", "x", "y")
        sweep.add("a", 1, 1)
        sweep.add("b", 2, 2)
        assert "not aligned" in render_sweep_chart(sweep)
