"""Integration tests for the self-organized mechanism (paper §5)."""

import pytest

from repro.cluster import ChurnKind, ChurnSchedule, LessLogSystem
from repro.core.errors import FileNotFoundInSystemError, MembershipError
from repro.node.storage import FileOrigin


def loaded_system(m=4, b=0, dead=(), files=8):
    sys_ = LessLogSystem.build(m=m, b=b, dead=set(dead))
    for i in range(files):
        sys_.insert(f"file-{i}", payload=f"payload-{i}")
    sys_.check_invariants()
    return sys_


class TestJoin:
    def test_join_registers_live(self):
        sys_ = loaded_system(dead=[6])
        sys_.join(6)
        assert sys_.is_live(6)
        sys_.check_invariants()

    def test_join_duplicate_rejected(self):
        sys_ = loaded_system()
        with pytest.raises(MembershipError):
            sys_.join(3)

    def test_paper_example_file_copied_back(self):
        # §5.1: P(4), P(5) dead; ψ(f)=4 stored the file at P(6).  When
        # P(5) joins, f must be copied back to P(5) (the new largest-VID
        # live node in the tree of P(4)).
        sys_ = LessLogSystem.build(m=4, dead={4, 5})
        name = sys_.psi.find_name_for_target(4)
        sys_.insert(name, payload="f")
        assert sys_.holders_of(name) == [6]
        migrated = sys_.join(5)
        assert name in migrated
        store5 = sys_.stores[5]
        assert store5.get(name, count_access=False).origin is FileOrigin.INSERTED
        sys_.check_invariants()

    def test_join_of_target_itself_moves_home(self):
        sys_ = LessLogSystem.build(m=4, dead={4})
        name = sys_.psi.find_name_for_target(4)
        sys_.insert(name, payload="f")
        sys_.join(4)
        assert 4 in sys_.holders_of(name)
        assert sys_.stores[4].get(name, count_access=False).origin is FileOrigin.INSERTED
        sys_.check_invariants()

    def test_old_home_becomes_replica_and_keeps_serving(self):
        sys_ = LessLogSystem.build(m=4, dead={4})
        name = sys_.psi.find_name_for_target(4)
        sys_.insert(name, payload="f")
        old_home = sys_.holders_of(name)[0]
        sys_.join(4)
        copy = sys_.stores[old_home].get(name, count_access=False)
        assert copy.origin is FileOrigin.REPLICATED
        # Reads entering anywhere still succeed.
        for entry in sys_.membership.live_pids():
            assert sys_.get(name, entry=entry).payload == "f"

    def test_unrelated_files_not_migrated(self):
        sys_ = loaded_system(dead=[6], files=6)
        before = {n: sys_.holders_of(n) for n in sys_.catalog}
        migrated = sys_.join(6)
        for name in sys_.catalog:
            if name not in migrated:
                assert sys_.holders_of(name) == before[name]


class TestLeave:
    def test_leave_reinserts_inserted_files(self):
        sys_ = loaded_system(files=12)
        victim = 4
        homed_here = [
            f.name for f in sys_.stores[victim].inserted_files()
        ]
        moved = sys_.leave(victim)
        assert sorted(moved) == sorted(homed_here)
        assert not sys_.is_live(victim)
        sys_.check_invariants()
        for name in homed_here:
            entry = next(iter(sys_.membership.live_pids()))
            assert sys_.get(name, entry=entry) is not None

    def test_leave_discards_replicas(self):
        sys_ = LessLogSystem.build(m=4)
        name = sys_.psi.find_name_for_target(4)
        sys_.insert(name, payload="x")
        target = sys_.replicate(name, overloaded=4)
        assert target == 5
        sys_.leave(5)
        assert 5 not in sys_.holders_of(name)
        sys_.check_invariants()

    def test_leave_dead_node_rejected(self):
        sys_ = loaded_system(dead=[2])
        with pytest.raises(MembershipError):
            sys_.leave(2)

    def test_every_file_readable_after_many_leaves(self):
        sys_ = loaded_system(m=5, files=10)
        for victim in (4, 9, 17, 23, 30):
            sys_.leave(victim)
            sys_.check_invariants()
        entry = next(iter(sys_.membership.live_pids()))
        for name in sys_.catalog:
            assert sys_.get(name, entry=entry) is not None


class TestFail:
    def test_fail_b0_loses_unreplicated_files(self):
        sys_ = LessLogSystem.build(m=4)
        name = sys_.psi.find_name_for_target(4)
        sys_.insert(name, payload="x")
        sys_.fail(4)
        assert name in sys_.faults
        with pytest.raises(FileNotFoundInSystemError):
            sys_.get(name, entry=0)

    def test_fail_b0_recovers_from_replica(self):
        sys_ = LessLogSystem.build(m=4)
        name = sys_.psi.find_name_for_target(4)
        sys_.insert(name, payload="x")
        sys_.replicate(name, overloaded=4)  # replica at P(5)
        recovered = sys_.fail(4)
        assert name in recovered
        assert name not in sys_.faults
        sys_.check_invariants()
        for entry in sys_.membership.live_pids():
            assert sys_.get(name, entry=entry).payload == "x"

    def test_fail_b2_recovers_from_other_subtree(self):
        # §5.3: with b>0 the file is copied from another subtree.
        sys_ = LessLogSystem.build(m=4, b=2)
        name = sys_.psi.find_name_for_target(4)
        result = sys_.insert(name, payload="x")
        victim = result.homes[0]
        recovered = sys_.fail(victim)
        assert name in recovered
        sys_.check_invariants()
        # Still 4 inserted copies, one per subtree.
        inserted = [
            pid
            for pid in sys_.holders_of(name)
            if sys_.stores[pid].get(name, count_access=False).origin
            is FileOrigin.INSERTED
        ]
        assert len(inserted) == 4

    def test_fault_tolerance_survives_b2_minus_one_failures(self):
        sys_ = LessLogSystem.build(m=5, b=2)
        name = sys_.psi.find_name_for_target(7)
        homes = list(sys_.insert(name, payload="x").homes)
        # Fail 3 of the 4 homes one at a time; the file must survive.
        for victim in homes[:3]:
            sys_.fail(victim)
            sys_.check_invariants()
            entry = next(iter(sys_.membership.live_pids()))
            assert sys_.get(name, entry=entry).payload == "x"

    def test_fail_dead_node_rejected(self):
        sys_ = loaded_system(dead=[2])
        with pytest.raises(MembershipError):
            sys_.fail(2)

    def test_fail_then_join_rebuilds(self):
        sys_ = loaded_system(m=4, b=1, files=6)
        sys_.fail(3)
        sys_.check_invariants()
        sys_.join(3)
        sys_.check_invariants()
        entry = next(iter(sys_.membership.live_pids()))
        for name in sys_.catalog:
            if name not in sys_.faults:
                assert sys_.get(name, entry=entry) is not None


class TestChurnSchedule:
    def test_generate_is_deterministic(self):
        sys_ = LessLogSystem.build(m=5)
        a = ChurnSchedule.generate(sys_, duration=50.0, rate=1.0, seed=3)
        b = ChurnSchedule.generate(sys_, duration=50.0, rate=1.0, seed=3)
        assert a.events == b.events

    def test_events_are_consistent(self):
        sys_ = LessLogSystem.build(m=5, n_live=20, seed=0)
        schedule = ChurnSchedule.generate(sys_, duration=100.0, rate=2.0, seed=7)
        assert len(schedule) > 0
        live = set(sys_.membership.live_pids())
        for event in schedule:
            if event.kind is ChurnKind.JOIN:
                assert event.pid not in live
                live.add(event.pid)
            else:
                assert event.pid in live
                live.discard(event.pid)
            assert live  # never emptied

    def test_apply_all_keeps_invariants(self):
        sys_ = LessLogSystem.build(m=5, b=1, n_live=24, seed=2)
        for i in range(6):
            sys_.insert(f"f{i}", payload=i)
        schedule = ChurnSchedule.generate(sys_, duration=30.0, rate=1.0, seed=5)
        applied = schedule.apply_all(sys_)
        assert applied == len(schedule)
        sys_.check_invariants()

    def test_apply_until_is_incremental(self):
        sys_ = LessLogSystem.build(m=5, n_live=20, seed=1)
        schedule = ChurnSchedule.generate(sys_, duration=60.0, rate=1.0, seed=9)
        first = schedule.apply_until(sys_, 30.0)
        rest = schedule.apply_until(sys_, 60.0)
        assert len(first) + len(rest) == len(schedule)
        assert all(e.time <= 30.0 for e in first)
