"""Unit tests for liveness-aware routing (repro.core.routing)."""

import pytest

from repro.core.liveness import AllLive, SetLiveness
from repro.core.routing import (
    find_live_node,
    first_alive_ancestor,
    iter_route,
    resolve_route,
    route_length,
    storage_node,
)
from repro.core.errors import NoLiveNodeError
from repro.core.tree import LookupTree


@pytest.fixture
def tree4():
    return LookupTree(4, 4)


@pytest.fixture
def all_live():
    return AllLive(4)


@pytest.fixture
def figure3_liveness():
    """Figure 3: a 14-node system with P(0) and P(5) dead."""
    return SetLiveness.all_but(4, dead=[0, 5])


class TestFirstAliveAncestor:
    def test_basic_model_is_plain_parent(self, tree4, all_live):
        assert first_alive_ancestor(tree4, 8, all_live) == 0
        assert first_alive_ancestor(tree4, 0, all_live) == 4

    def test_root_has_none(self, tree4, all_live):
        assert first_alive_ancestor(tree4, 4, all_live) is None

    def test_skips_dead_parent(self, tree4, figure3_liveness):
        # P(8)'s parent P(0) is dead -> climb to P(4).
        assert first_alive_ancestor(tree4, 8, figure3_liveness) == 4

    def test_none_when_all_ancestors_dead(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[4])  # target itself dead
        # P(12) is VID 0111, its only ancestor is the root P(4) (dead).
        assert first_alive_ancestor(tree4, 12, liveness) is None


class TestFindLiveNode:
    def test_returns_start_when_alive(self, tree4, all_live):
        assert find_live_node(tree4, 7, all_live) == 7

    def test_scans_descending_vids(self, tree4):
        # Root P(4) dead: the next VID down is 1110 -> P(5); P(5) dead
        # too -> 1101 -> P(6).
        liveness = SetLiveness.all_but(4, dead=[4, 5])
        assert find_live_node(tree4, 4, liveness) == 6

    def test_paper_insert_example(self, tree4):
        # §5.1 example: P(4), P(5) dead, ψ(f) = 4 -> file inserted at P(6).
        liveness = SetLiveness.all_but(4, dead=[4, 5])
        assert storage_node(tree4, liveness) == 6

    def test_raises_when_nothing_live_below(self, tree4):
        liveness = SetLiveness(4, live=[])
        with pytest.raises(NoLiveNodeError):
            find_live_node(tree4, 4, liveness)

    def test_live_target_stores_at_itself(self, tree4, figure3_liveness):
        assert storage_node(tree4, figure3_liveness) == 4


class TestResolveRoute:
    def test_paper_basic_route(self, tree4, all_live):
        assert resolve_route(tree4, 8, all_live) == [8, 0, 4]

    def test_entry_at_root(self, tree4, all_live):
        assert resolve_route(tree4, 4, all_live) == [4]

    def test_route_length(self, tree4, all_live):
        assert route_length(tree4, 8, all_live) == 2
        assert route_length(tree4, 4, all_live) == 0

    def test_route_with_dead_parent(self, tree4, figure3_liveness):
        # P(8): parent P(0) dead -> direct hop to P(4).
        assert resolve_route(tree4, 8, figure3_liveness) == [8, 4]

    def test_route_jumps_to_storage_when_target_dead(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[4, 5])
        # Storage node is P(6) (VID 1101).  Entry P(12) (VID 0111) has
        # only the dead root above it -> jump straight to P(6).
        assert resolve_route(tree4, 12, liveness) == [12, 6]

    def test_route_from_storage_node_is_singleton(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[4, 5])
        assert resolve_route(tree4, 6, liveness) == [6]

    def test_dead_entry_raises(self, tree4, figure3_liveness):
        with pytest.raises(NoLiveNodeError):
            resolve_route(tree4, 5, figure3_liveness)

    def test_routes_visit_only_live_nodes(self, tree4, figure3_liveness):
        for entry in figure3_liveness.live_pids():
            for hop in resolve_route(tree4, entry, figure3_liveness):
                assert figure3_liveness.is_live(hop)

    def test_all_routes_end_at_storage_node(self, tree4):
        for dead in ([], [4], [4, 5], [0, 5], [4, 5, 6, 7]):
            liveness = SetLiveness.all_but(4, dead=dead)
            home = storage_node(tree4, liveness)
            for entry in liveness.live_pids():
                assert resolve_route(tree4, entry, liveness)[-1] == home

    def test_iter_route_matches_resolve(self, tree4, figure3_liveness):
        for entry in figure3_liveness.live_pids():
            assert list(iter_route(tree4, entry, figure3_liveness)) == resolve_route(
                tree4, entry, figure3_liveness
            )

    def test_route_length_bounded(self, tree4):
        # Even with dead nodes the climb is at most m hops plus the
        # final jump.
        liveness = SetLiveness.all_but(4, dead=[4, 0, 5, 6])
        for entry in liveness.live_pids():
            assert route_length(tree4, entry, liveness) <= 4 + 1


class TestRouteLengthScaling:
    def test_log_bound_larger_system(self):
        m = 8
        tree = LookupTree(77, m)
        liveness = AllLive(m)
        lengths = [route_length(tree, e, liveness) for e in range(1 << m)]
        assert max(lengths) == m  # VID 0 is m hops from the root
        assert min(lengths) == 0
