"""Tests for system snapshot / restore (repro.cluster.snapshot)."""

import json

import pytest

from repro.cluster import LessLogSystem
from repro.cluster.snapshot import (
    restore_from_dict,
    restore_from_json,
    snapshot_to_dict,
    snapshot_to_json,
)
from repro.core.errors import ConfigurationError
from repro.core.hashing import Psi
from repro.node.storage import FileOrigin


def loaded_system():
    system = LessLogSystem.build(m=4, b=1, dead={2}, psi=Psi(4, salt="snap"))
    system.insert("a.txt", payload=b"binary\x00payload")
    system.insert("b.txt", payload={"nested": [1, 2, 3]})
    system.insert("c.txt", payload="plain string")
    home = system.holders_of("a.txt")[0]
    system.replicate("a.txt", overloaded=home)
    system.update("b.txt", payload={"nested": [4]})
    system.get("c.txt", entry=0)
    return system


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self):
        original = loaded_system()
        restored = restore_from_dict(snapshot_to_dict(original))
        assert restored.m == original.m and restored.b == original.b
        assert set(restored.membership.live_pids()) == set(
            original.membership.live_pids()
        )
        assert set(restored.catalog) == set(original.catalog)
        for name in original.catalog:
            assert restored.catalog[name].version == original.catalog[name].version
            assert restored.holders_of(name) == original.holders_of(name)

    def test_payloads_survive_including_bytes(self):
        restored = restore_from_dict(snapshot_to_dict(loaded_system()))
        assert restored.get("a.txt", entry=0).payload == b"binary\x00payload"
        assert restored.get("b.txt", entry=0).payload == {"nested": [4]}
        assert restored.get("c.txt", entry=0).payload == "plain string"

    def test_origins_and_counters_survive(self):
        original = loaded_system()
        restored = restore_from_dict(snapshot_to_dict(original))
        for pid in original.holders_of("a.txt"):
            orig = original.stores[pid].get("a.txt", count_access=False)
            back = restored.stores[pid].get("a.txt", count_access=False)
            assert back.origin is orig.origin
            assert back.access_count == orig.access_count

    def test_json_roundtrip(self):
        original = loaded_system()
        text = snapshot_to_json(original, indent=2)
        json.loads(text)  # valid JSON
        restored = restore_from_json(text)
        assert set(restored.catalog) == set(original.catalog)

    def test_restored_system_is_operable(self):
        restored = restore_from_dict(snapshot_to_dict(loaded_system()))
        restored.insert("new.txt", payload=1)
        restored.update("a.txt", payload=b"v2")
        restored.fail(next(iter(restored.membership.live_pids())))
        restored.check_invariants()

    def test_psi_salt_preserved(self):
        restored = restore_from_dict(snapshot_to_dict(loaded_system()))
        assert restored.psi.salt == "snap"

    def test_faults_preserved(self):
        system = LessLogSystem.build(m=4)
        name = system.psi.find_name_for_target(4)
        system.insert(name)
        system.fail(4)
        assert name in system.faults
        restored = restore_from_dict(snapshot_to_dict(system))
        assert name in restored.faults


class TestValidation:
    def test_bad_format_rejected(self):
        with pytest.raises(ConfigurationError):
            restore_from_dict({"format": 99})

    def test_files_at_dead_node_rejected(self):
        data = snapshot_to_dict(loaded_system())
        data["stores"]["2"] = [
            {"name": "x", "payload": None, "version": 1, "origin": "inserted"}
        ]
        with pytest.raises(ConfigurationError):
            restore_from_dict(data)

    def test_restore_runs_invariant_check(self):
        data = snapshot_to_dict(loaded_system())
        # Corrupt: duplicate INSERTED copy of a.txt somewhere else.
        victim = next(
            pid for pid in data["stores"]
            if not any(f["name"] == "a.txt" for f in data["stores"][pid])
        )
        data["stores"][victim].append(
            {
                "name": "a.txt",
                "payload": None,
                "version": 2,
                "origin": FileOrigin.INSERTED.value,
            }
        )
        with pytest.raises(AssertionError):
            restore_from_dict(data)
