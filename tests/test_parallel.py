"""Tests for process-parallel sweep execution (repro.experiments.parallel)."""

import os

import pytest

from repro.experiments import FigureConfig, figure5, figure6, run_experiment
from repro.experiments.parallel import CellError, map_cells, resolve_workers


def _square(x):
    return x * x


def _explode_on_boom(x):
    if x == "boom":
        raise RuntimeError("kaboom")
    return x


def _pid_and_value(x):
    return os.getpid(), x


class TestMapCells:
    def test_serial_preserves_order(self):
        assert map_cells(_square, [(1,), (2,), (3,)], workers=1) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        cells = [(i,) for i in range(12)]
        assert map_cells(_square, cells, workers=3) == [i * i for i in range(12)]

    def test_parallel_actually_uses_other_processes(self):
        cells = [(i,) for i in range(8)]
        results = map_cells(_pid_and_value, cells, workers=4)
        pids = {pid for pid, _ in results}
        assert len(pids) > 1
        assert os.getpid() not in pids or len(pids) > 1

    def test_single_cell_runs_inline(self):
        results = map_cells(_pid_and_value, [(7,)], workers=4)
        assert results == [(os.getpid(), 7)]

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            map_cells(_square, [(1,)], workers=-1)

    def test_zero_workers_means_auto(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert map_cells(_square, [(1,), (2,)], workers=0) == [1, 4]

    def test_failing_cell_named_in_error(self):
        with pytest.raises(CellError, match=r"cell 1 \('boom'\)"):
            map_cells(_explode_on_boom, [("ok",), ("boom",)], workers=1)

    def test_failing_cell_named_in_error_parallel(self):
        cells = [(f"item{i}",) for i in range(6)] + [("boom",)]
        with pytest.raises(CellError, match="cell 6"):
            map_cells(_explode_on_boom, cells, workers=2)


class TestParallelFigures:
    def test_figure5_identical_serial_vs_parallel(self):
        cfg = FigureConfig(m=6, rates=(500.0, 1500.0))
        serial = figure5(cfg)
        parallel = figure5(cfg.with_(workers=2))
        assert serial.series == parallel.series

    def test_figure6_identical_serial_vs_parallel(self):
        cfg = FigureConfig(m=6, rates=(500.0, 1500.0))
        assert figure6(cfg).series == figure6(cfg.with_(workers=2)).series

    def test_runner_accepts_workers(self):
        result = run_experiment("fig5", fast=True, workers=2)
        assert result.series

    def test_workers_validated_in_config(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FigureConfig(workers=-1)
        assert FigureConfig(workers=0).workers == 0  # 0 = one per CPU
