"""DES tests for mid-run membership changes (join and fail)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.liveness import SetLiveness
from repro.core.routing import storage_node
from repro.engine.des_driver import DesExperiment
from repro.workloads import UniformDemand


def make_exp(m=5, target=13, dead=(), total_rate=200.0, capacity=10_000.0, **kw):
    liveness = SetLiveness.all_but(m, dead=list(dead))
    rates = UniformDemand().rates(total_rate, liveness)
    return DesExperiment(
        m=m, target=target, entry_rates=rates, capacity=capacity,
        dead=set(dead), **kw
    )


class TestDesJoin:
    def test_join_of_dead_target_takes_over(self):
        # The target is dead at start, so the file lives elsewhere; the
        # target joins mid-run and must end up holding the file.
        exp = make_exp(dead=(13,))
        old_home = storage_node(exp.tree, exp.membership)
        assert old_home != 13
        exp.join_node(13, at_time=2.0)
        result = exp.run(duration=6.0)
        assert 13 in exp.nodes
        assert exp.file in exp.nodes[13].store
        # At most a handful of in-flight requests fault during the
        # one-latency transfer window.
        assert result.faults <= 5
        assert result.requests_served + result.faults == result.requests_sent

    def test_join_of_leaf_is_transparent(self):
        from repro.core.tree import LookupTree

        tree = LookupTree(13, 5)
        leaf = next(
            p for p in range(32) if p != 13 and tree.offspring_count(p) == 0
        )
        exp = make_exp(dead=(leaf,))
        exp.join_node(leaf, at_time=2.0)
        result = exp.run(duration=5.0)
        assert result.faults == 0
        # The leaf never becomes a storage node, so no transfer happens.
        assert exp.file not in exp.nodes[leaf].store

    def test_join_of_live_node_raises(self):
        exp = make_exp()
        exp.join_node(7, at_time=1.0)
        with pytest.raises(ConfigurationError):
            exp.run(duration=3.0)

    def test_joined_node_serves_requests(self):
        exp = make_exp(dead=(13,), total_rate=300.0)
        exp.join_node(13, at_time=1.0)
        result = exp.run(duration=8.0)
        served_at_13 = exp.nodes[13].store.get(
            exp.file, count_access=False
        ).access_count
        assert served_at_13 > 0
        assert result.requests_served + result.faults == result.requests_sent


class TestDesFailThenJoin:
    def test_recovery_cycle(self):
        # Fail a mid-tree node, then have it rejoin: the overlay routes
        # around it while dead and through it again afterwards.
        exp = make_exp(total_rate=300.0)
        victim = exp.tree.children(13)[0]
        exp.fail_node(victim, at_time=2.0)
        exp.join_node(victim, at_time=4.0)
        result = exp.run(duration=8.0)
        assert result.faults == 0
        assert victim in exp.nodes
