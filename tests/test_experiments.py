"""Tests for experiment drivers at test-sized configurations."""

import pytest

from repro.analysis import dominates, max_relative_spread
from repro.core.errors import ConfigurationError
from repro.experiments import FigureConfig, figure5, figure6, figure7, figure8
from repro.experiments.extensions import (
    engine_agreement,
    fault_tolerance_study,
    lookup_path_lengths,
    prune_ablation,
)
from repro.experiments.figures import (
    liveness_with_dead_fraction,
    replicas_to_balance,
    target_of,
)
from repro.experiments.runner import list_experiments, run_experiment
from repro.workloads import UniformDemand


TINY = FigureConfig.tiny()


class TestConfig:
    def test_paper_defaults(self):
        cfg = FigureConfig.paper()
        assert cfg.m == 10
        assert cfg.capacity == 100.0
        assert len(cfg.rates) == 20
        assert cfg.rates[0] == 1000.0 and cfg.rates[-1] == 20000.0

    def test_fast_is_smaller(self):
        assert len(FigureConfig.fast().rates) < len(FigureConfig.paper().rates)

    def test_with_override(self):
        assert TINY.with_(seed=9).seed == 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FigureConfig(rates=())
        with pytest.raises(ConfigurationError):
            FigureConfig(capacity=0.0)
        with pytest.raises(ConfigurationError):
            FigureConfig(rates=(0.0,))


class TestHelpers:
    def test_target_is_stable(self):
        assert target_of(TINY) == target_of(TINY)

    def test_liveness_fraction(self):
        view = liveness_with_dead_fraction(6, 0.25, seed=0)
        assert view.live_count() == 48
        assert liveness_with_dead_fraction(6, 0.0, seed=0).live_count() == 64

    def test_liveness_fraction_too_high(self):
        with pytest.raises(ValueError):
            liveness_with_dead_fraction(4, 1.0, seed=0)

    def test_replicas_to_balance_scales_with_rate(self):
        live = liveness_with_dead_fraction(TINY.m, 0.0, 0)
        low = replicas_to_balance(TINY, "lesslog", UniformDemand(), live, 500.0)
        high = replicas_to_balance(TINY, "lesslog", UniformDemand(), live, 2000.0)
        assert high > low


class TestFigureShapes:
    """The paper's qualitative claims at test scale (m=6)."""

    def test_figure5_ordering(self):
        result = figure5(TINY)
        xs = result.xs()
        lesslog = [result.value("lesslog", x) for x in xs]
        logbased = [result.value("log-based", x) for x in xs]
        rand = [result.value("random", x) for x in xs]
        assert dominates(logbased, lesslog)  # log-based <= lesslog
        assert sum(rand) > sum(lesslog)      # random is much worse

    def test_figure6_dead_fraction_insensitive(self):
        result = figure6(TINY)
        xs = result.xs()
        series = [
            [result.value(name, x) for x in xs]
            for name in sorted(result.series)
        ]
        assert len(series) == 3
        # "A similar number of replicas" across dead fractions.
        assert max_relative_spread(series) < 1.0

    def test_figure7_locality_ordering(self):
        result = figure7(TINY)
        xs = result.xs()
        lesslog = [result.value("lesslog", x) for x in xs]
        logbased = [result.value("log-based", x) for x in xs]
        rand = [result.value("random", x) for x in xs]
        assert dominates(logbased, lesslog)
        assert sum(rand) > sum(lesslog)

    def test_figure8_runs_all_series(self):
        result = figure8(TINY)
        assert len(result.series) == 3
        assert all(len(points) == len(TINY.rates) for points in result.series.values())


class TestExtensionsAtTinyScale:
    def test_lookup_is_logarithmic(self):
        result = lookup_path_lengths(widths=(4, 6), samples=40)
        assert result.value("lesslog max", 16) <= 4
        assert result.value("lesslog max", 64) <= 6

    def test_prune_reduces_replicas(self):
        result = prune_ablation(
            m=6, peak_rate=1500.0, trough_rate=150.0, thresholds=(10.0,)
        )
        assert result.value("after prune", 10.0) <= result.value("before prune", 10.0)

    def test_fault_tolerance_b_improves_survival(self):
        result = fault_tolerance_study(m=6, bs=(0, 2), files=20, crashes=25, seed=1)
        assert result.value("survival fraction", 2) >= result.value(
            "survival fraction", 0
        )
        assert result.value("copies per file", 2) == 4.0

    def test_engine_agreement_close(self):
        result = engine_agreement(m=6, rates=(800.0,), duration=10.0)
        fluid = result.value("fluid", 800.0)
        des = result.value("des", 800.0)
        assert fluid > 0
        assert 0.5 * fluid <= des <= 2.5 * fluid


class TestRunner:
    def test_lists_all_ids(self):
        ids = list_experiments()
        assert {"fig5", "fig6", "fig7", "fig8"} <= set(ids)
        assert any(i.startswith("ext-") for i in ids)

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_run_experiment_fast(self):
        result = run_experiment("ext-lookup", fast=True)
        assert result.series
