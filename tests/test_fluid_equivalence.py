"""Property-style equivalence: vectorized fluid engine vs reference pass.

The vectorized incremental engine must be *bit-identical* to the
original dict-based pass — same served rates (hex-exact floats), same
placement sequences, same final holder sets — across tree widths,
random liveness patterns, and all three policies.  ``b`` follows §4's
isomorphic-subtree argument: a fault-tolerance degree ``b`` partitions
the width-``m`` tree into ``2^b`` subtrees each isomorphic to a
width-``m - b`` tree, so sweeping ``b`` sweeps the effective width.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import make_policy
from repro.core.liveness import AllLive, SetLiveness
from repro.core.tree import LookupTree
from repro.engine.fluid import FluidSimulation

POLICIES = ("lesslog", "log-based", "random")


def _build(m, root, liveness_live, rates, capacity, seed, reference):
    liveness = (
        AllLive(m) if liveness_live is None
        else SetLiveness(m=m, live=set(liveness_live))
    )
    entry = np.zeros(1 << m)
    for pid, rate in rates.items():
        entry[pid] = rate
    return FluidSimulation(
        LookupTree(root, m),
        liveness,
        entry,
        capacity=capacity,
        rng=random.Random(seed),
        reference=reference,
    )


def _case(rng, m):
    n = 1 << m
    root = rng.randrange(n)
    if rng.random() < 0.3:
        live = None
        live_set = set(range(n))
    else:
        live_set = set(rng.sample(range(n), rng.randint(max(2, n // 3), n)))
        live_set.add(root)
        live = frozenset(live_set)
    rates = {
        pid: rng.uniform(0.0, 3.0) for pid in live_set if rng.random() < 0.8
    }
    capacity = rng.uniform(1.0, 10.0)
    seed = rng.randrange(1 << 30)
    return root, live, rates, capacity, seed


def _fingerprint(sim, outcome):
    served = {pid: rate.hex() for pid, rate in outcome.flows.served.items()}
    forwarders = {
        holder: [(child, rate.hex()) for child, rate in fw.items()]
        for holder, fw in outcome.flows.forwarders.items()
    }
    placements = [(p.round, p.source, p.target) for p in outcome.placements]
    return served, forwarders, placements, sorted(sim.holders), outcome.unresolved


class TestBalanceEquivalence:
    @pytest.mark.parametrize("m", [4, 5, 6, 7, 8])
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_fast_matches_reference(self, m, policy_name):
        rng = random.Random(m * 1009 + hash(policy_name) % 997)
        for trial in range(6):
            root, live, rates, capacity, seed = _case(rng, m)
            results = []
            for reference in (True, False):
                sim = _build(m, root, live, rates, capacity, seed, reference)
                outcome = sim.balance(make_policy(policy_name))
                results.append(_fingerprint(sim, outcome))
            assert results[0] == results[1], (m, policy_name, trial, root)

    @pytest.mark.parametrize("b", [0, 1, 2])
    def test_fast_matches_reference_across_b(self, b):
        """Effective width ``m - b`` per the isomorphic-subtree argument."""
        m_eff = 8 - b
        rng = random.Random(4242 + b)
        for policy_name in POLICIES:
            root, live, rates, capacity, seed = _case(rng, m_eff)
            results = []
            for reference in (True, False):
                sim = _build(
                    m_eff, root, live, rates, capacity, seed, reference
                )
                outcome = sim.balance(make_policy(policy_name))
                results.append(_fingerprint(sim, outcome))
            assert results[0] == results[1], (b, policy_name)

    @pytest.mark.parametrize("serial", [False, True])
    def test_serial_schedule_matches(self, serial):
        rng = random.Random(17)
        root, live, rates, capacity, seed = _case(rng, 6)
        results = []
        for reference in (True, False):
            sim = _build(6, root, live, rates, capacity, seed, reference)
            outcome = sim.balance(make_policy("lesslog"), serial=serial)
            results.append(_fingerprint(sim, outcome))
        assert results[0] == results[1]


class TestHypothesisEquivalence:
    """Hypothesis-driven differential test: reference vs vectorized.

    Where the parametrized cases above walk a fixed grid of seeded
    trials, hypothesis searches the input space adversarially — random
    liveness patterns, demand placements, and policies — and shrinks
    any divergence to a minimal (m, root, live, rates) witness.
    """

    @given(
        m=st.integers(min_value=3, max_value=7),
        policy_name=st.sampled_from(POLICIES),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_reference_and_fast_agree(self, m, policy_name, data):
        n = 1 << m
        root = data.draw(st.integers(0, n - 1), label="root")
        live_set = data.draw(
            st.sets(st.integers(0, n - 1), min_size=max(2, n // 4), max_size=n),
            label="live",
        )
        live_set.add(root)
        rate_nodes = data.draw(
            st.lists(
                st.sampled_from(sorted(live_set)), min_size=1, max_size=n,
                unique=True,
            ),
            label="rate_nodes",
        )
        rates = {
            pid: data.draw(
                st.floats(0.0, 5.0, allow_nan=False, allow_infinity=False),
                label=f"rate[{pid}]",
            )
            for pid in rate_nodes
        }
        capacity = data.draw(st.floats(0.5, 12.0), label="capacity")
        seed = data.draw(st.integers(0, 2**30), label="seed")
        results = []
        for reference in (True, False):
            sim = _build(
                m, root, frozenset(live_set), rates, capacity, seed, reference
            )
            outcome = sim.balance(make_policy(policy_name))
            results.append(_fingerprint(sim, outcome))
        assert results[0] == results[1]

    @given(
        b=st.integers(min_value=0, max_value=2),
        policy_name=st.sampled_from(POLICIES),
        seed=st.integers(0, 2**30),
    )
    @settings(max_examples=20, deadline=None)
    def test_agreement_across_b_partitions(self, b, policy_name, seed):
        """§4: width ``m - b`` subtrees — random shapes, both engines."""
        m_eff = 7 - b
        rng = random.Random(seed)
        root, live, rates, capacity, run_seed = _case(rng, m_eff)
        results = []
        for reference in (True, False):
            sim = _build(m_eff, root, live, rates, capacity, run_seed, reference)
            outcome = sim.balance(make_policy(policy_name))
            results.append(_fingerprint(sim, outcome))
        assert results[0] == results[1]


class TestFlowEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_compute_flows_identical(self, seed):
        rng = random.Random(seed)
        m = rng.choice([4, 5, 6, 7, 8])
        root, live, rates, capacity, run_seed = _case(rng, m)
        fast = _build(m, root, live, rates, capacity, run_seed, False)
        ref = _build(m, root, live, rates, capacity, run_seed, True)
        # Grow identical holder sets beyond the storage node.
        extra = [pid for pid in fast.table.order.tolist() if rng.random() < 0.2]
        fast.holders.update(extra)
        ref.holders.update(extra)
        a, b = fast.compute_flows(), ref.compute_flows()
        assert {p: r.hex() for p, r in a.served.items()} == (
            {p: r.hex() for p, r in b.served.items()}
        )
        assert a.forwarders.keys() == b.forwarders.keys()
        for holder in a.forwarders:
            assert list(a.forwarders[holder].items()) == (
                list(b.forwarders[holder].items())
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_flow_conservation(self, seed):
        """Total served equals total offered (every request lands)."""
        rng = random.Random(100 + seed)
        m = rng.choice([4, 5, 6, 7, 8])
        root, live, rates, capacity, run_seed = _case(rng, m)
        sim = _build(m, root, live, rates, capacity, run_seed, False)
        outcome = sim.balance(make_policy("lesslog"))
        offered = float(sim.entry_rates.sum())
        assert outcome.flows.total_served() == pytest.approx(offered, rel=1e-12)
