"""DES tests for the §4 fault-tolerant mode (b > 0)."""

import pytest

from repro.baselines import LessLogPolicy
from repro.core.liveness import SetLiveness
from repro.core.subtree import SubtreeView, insert_targets, subtree_of_pid
from repro.engine.des_driver import DesExperiment
from repro.workloads import UniformDemand


def make_exp(m=5, b=1, target=13, total_rate=300.0, capacity=100.0, dead=(), **kw):
    liveness = SetLiveness.all_but(m, dead=list(dead))
    rates = UniformDemand().rates(total_rate, liveness)
    return DesExperiment(
        m=m, target=target, entry_rates=rates, capacity=capacity,
        dead=set(dead), b=b, **kw
    )


class TestSubtreeRouting:
    def test_all_requests_served(self):
        exp = make_exp(b=1, total_rate=200.0, capacity=1000.0)
        result = exp.run(duration=5.0)
        assert result.faults == 0
        assert result.requests_served == result.requests_sent

    def test_b2_all_served(self):
        exp = make_exp(m=6, b=2, total_rate=300.0, capacity=1000.0)
        result = exp.run(duration=5.0)
        assert result.faults == 0
        assert result.requests_served == result.requests_sent

    def test_hops_bounded_by_subtree_width(self):
        exp = make_exp(m=6, b=2, total_rate=200.0, capacity=1000.0)
        result = exp.run(duration=4.0)
        # Route stays inside one subtree: at most m - b climb hops
        # (plus the storage jump), no migrations in a healthy system.
        assert result.hop_max <= (exp.m - exp.b) + 1
        assert exp.metrics.counter("des.migrations").value == 0

    def test_overload_replicates_within_subtree(self):
        exp = make_exp(m=6, b=1, total_rate=1200.0, capacity=100.0)
        result = exp.run(duration=10.0)
        assert result.replicas_created >= 1
        for _, source, target in result.replica_events:
            assert subtree_of_pid(exp.tree, source, 1) == subtree_of_pid(
                exp.tree, target, 1
            )


class TestSubtreeMigration:
    def test_requests_migrate_after_home_failure(self):
        # Kill one subtree's home mid-run: requests entering that
        # subtree must migrate to the other subtree, not fault.
        exp = make_exp(m=5, b=1, total_rate=200.0, capacity=10_000.0)
        homes = insert_targets(exp.tree, 1, exp.membership)
        assert len(homes) == 2
        exp.fail_node(homes[0], at_time=2.0)
        result = exp.run(duration=8.0)
        assert result.faults == 0
        assert exp.metrics.counter("des.migrations").value > 0
        # Messages already in flight to the victim at crash time are
        # physically unrecoverable; everything else must be served.
        assert result.requests_sent - result.requests_served <= 3

    def test_all_homes_failed_faults(self):
        exp = make_exp(m=5, b=1, total_rate=100.0, capacity=10_000.0)
        for i, home in enumerate(insert_targets(exp.tree, 1, exp.membership)):
            exp.fail_node(home, at_time=1.0 + 0.1 * i)
        result = exp.run(duration=6.0)
        assert result.faults > 0

    def test_dead_subtree_members_at_start(self):
        # A subtree with dead members still routes internally.
        m = 5
        tree_target = 13
        exp = make_exp(m=m, b=1, target=tree_target, dead=(2, 9), total_rate=200.0,
                       capacity=10_000.0)
        result = exp.run(duration=5.0)
        assert result.faults == 0
        assert result.requests_served == result.requests_sent


class TestFaultTolerantDeterminism:
    def test_deterministic_given_seed(self):
        a = make_exp(m=5, b=1, total_rate=600.0, seed=4).run(duration=6.0)
        b = make_exp(m=5, b=1, total_rate=600.0, seed=4).run(duration=6.0)
        assert a.replicas_created == b.replicas_created
        assert a.replica_events == b.replica_events
