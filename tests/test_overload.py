"""Tests for the overload control plane (``repro.runtime.overload``).

The deterministic pieces — the policy grid, every admission-policy
cell driven directly against scripted message sequences, the windowed
latency tracker, and the config validation — run in tier-1.  The
flood tests that boot real clusters, shed under a flash crowd, follow
redirects, and check SLO-triggered replication carry the ``runtime``
marker and run in CI's dedicated overload-smoke job.
"""

import asyncio

import pytest

from repro.core.errors import ConfigurationError
from repro.net.message import Message, MessageKind
from repro.runtime import (
    AdmissionController,
    LiveCluster,
    LoadGenerator,
    OverloadPolicy,
    RuntimeClient,
    RuntimeConfig,
    WorkloadShape,
    diff_states,
    policy_grid,
    replay_oplog,
)
from repro.runtime.overload import LatencyTracker

# ---------------------------------------------------------------------------
# the policy grid
# ---------------------------------------------------------------------------


class TestOverloadPolicy:
    def test_grid_is_the_full_2x2x3_matrix(self):
        cells = [p.cell for p in policy_grid()]
        assert len(cells) == 12 and len(set(cells)) == 12
        assert cells[0] == "conservative/fcfs/lifo"
        assert "aggressive/priority/random" in cells

    def test_default_cell(self):
        assert OverloadPolicy().cell == "conservative/fcfs/lifo"

    @pytest.mark.parametrize("kwargs", [
        {"shed": "gentle"},
        {"queue": "lcfs"},
        {"victim": "oldest"},
    ])
    def test_unknown_policy_names_rejected(self, kwargs):
        with pytest.raises(ValueError, match="policy must be one of"):
            OverloadPolicy(**kwargs)

    def test_config_validates_the_cell(self):
        with pytest.raises(ConfigurationError, match="victim policy"):
            RuntimeConfig(m=3, b=1, victim_policy="oldest")
        with pytest.raises(ConfigurationError, match="non-negative"):
            RuntimeConfig(m=3, b=1, inbox_limit=-1)
        with pytest.raises(ConfigurationError, match="slo_budget"):
            RuntimeConfig(m=3, b=1, slo_budget=0.0)
        config = RuntimeConfig(m=3, b=1, shed_policy="aggressive",
                               queue_policy="priority", victim_policy="fifo")
        assert config.overload_policy().cell == "aggressive/priority/fifo"


# ---------------------------------------------------------------------------
# admission control: every cell, scripted deterministically
# ---------------------------------------------------------------------------


def _get(rid: int, src: int = -1) -> Message:
    return Message(kind=MessageKind.GET, src=src, dst=0, file=f"f-{rid}",
                   request_id=rid)


def _controller(shed="conservative", queue="fcfs", victim="lifo",
                limit=3, seed=0) -> AdmissionController:
    return AdmissionController(
        OverloadPolicy(shed=shed, queue=queue, victim=victim), limit, seed=seed
    )


class TestAdmissionController:
    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            _controller(limit=0)

    def test_under_limit_always_admits(self):
        ctl = _controller(limit=3)
        for rid in range(3):
            accepted, victims = ctl.admit(_get(rid))
            assert accepted and not victims
        assert ctl.depth == 3 and ctl.admitted == 3 and ctl.shed == 0

    def test_control_traffic_is_never_shed(self):
        ctl = _controller(limit=1)
        ctl.admit(_get(0))
        for kind in MessageKind:
            if kind is MessageKind.GET:
                continue
            msg = Message(kind=kind, src=-1, dst=0, file="x", request_id=99)
            accepted, victims = ctl.admit(msg)
            assert accepted and not victims
        assert ctl.shed == 0 and ctl.depth == 1

    def test_conservative_lifo_rejects_the_newcomer(self):
        # The arrival is the newest member of the pool: lifo picks it.
        ctl = _controller(shed="conservative", victim="lifo", limit=2)
        ctl.admit(_get(0))
        ctl.admit(_get(1))
        accepted, victims = ctl.admit(_get(2))
        assert not accepted and victims == []
        assert ctl.depth == 2 and ctl.shed == 1

    def test_conservative_fifo_drops_the_head(self):
        ctl = _controller(shed="conservative", victim="fifo", limit=2)
        ctl.admit(_get(0))
        ctl.admit(_get(1))
        accepted, victims = ctl.admit(_get(2))
        assert accepted  # the newcomer takes the vacated slot
        assert [v[0].request_id for v in victims] == [0]
        assert ctl.depth == 2 and ctl.shed == 1

    def test_random_victim_is_seeded(self):
        def run(seed):
            ctl = _controller(victim="random", limit=4, seed=seed)
            shed = []
            for rid in range(12):
                accepted, victims = ctl.admit(_get(rid))
                shed.extend(v[0].request_id for v in victims)
                if not accepted:
                    shed.append(rid)
            return shed

        assert run(7) == run(7)
        assert run(7) != run(8)  # a different stream picks differently

    def test_aggressive_clears_to_half_the_limit(self):
        ctl = _controller(shed="aggressive", victim="fifo", limit=4)
        for rid in range(4):
            ctl.admit(_get(rid))
        accepted, victims = ctl.admit(_get(4))
        # pool of 5, keep max(1, 4 // 2) = 2: three victims, oldest first.
        assert [v[0].request_id for v in victims] == [0, 1, 2]
        assert accepted and ctl.depth == 2 and ctl.shed == 3

    def test_priority_sheds_client_entries_before_forwarded(self):
        ctl = _controller(queue="priority", victim="fifo", limit=2)
        ctl.admit(_get(0, src=5))    # forwarded by a peer: protected
        ctl.admit(_get(1, src=-1))   # fresh client entry
        accepted, victims = ctl.admit(_get(2, src=7))
        # The forwarded arrival displaces the queued client entry.
        assert accepted
        assert [v[0].request_id for v in victims] == [1]
        assert sorted(m.request_id for m, _ in ctl._queued.values()) == [0, 2]

    def test_fcfs_ignores_the_source_class(self):
        ctl = _controller(queue="fcfs", victim="fifo", limit=2)
        ctl.admit(_get(0, src=5))
        ctl.admit(_get(1, src=-1))
        accepted, victims = ctl.admit(_get(2, src=7))
        # Oldest overall goes, forwarded or not.
        assert accepted and [v[0].request_id for v in victims] == [0]

    def test_release_skips_the_shed_husk(self):
        ctl = _controller(victim="fifo", limit=1)
        ctl.admit(_get(0))
        accepted, victims = ctl.admit(_get(1))
        assert accepted and [v[0].request_id for v in victims] == [0]
        assert ctl.release(_get(0)) is True   # husk: skip it
        assert ctl.release(_get(0)) is False  # idempotent
        assert ctl.release(_get(1)) is False  # live: serve it

    def test_window_spans_dispatch_to_finish(self):
        ctl = _controller(limit=2)
        ctl.admit(_get(0))
        ctl.admit(_get(1))
        assert ctl.release(_get(0)) is False
        assert ctl.depth == 2  # dispatched but unfinished still counts
        accepted, _ = ctl.admit(_get(2))
        assert not accepted
        ctl.finish(_get(0))
        assert ctl.depth == 1
        accepted, _ = ctl.admit(_get(3))
        assert accepted

    def test_in_service_work_is_never_victimized(self):
        ctl = _controller(shed="aggressive", victim="fifo", limit=2)
        ctl.admit(_get(0))
        ctl.admit(_get(1))
        ctl.release(_get(0))  # rid 0 is now in service
        accepted, victims = ctl.admit(_get(2))
        # Aggressive wants depth 1, but only the queued rid 1 and the
        # arrival are sheddable: rid 0 rides on.
        assert [v[0].request_id for v in victims] == [1]
        assert not accepted
        assert ctl.depth == 1  # just the in-service request

    @pytest.mark.parametrize("policy", policy_grid(),
                            ids=lambda p: p.cell.replace("/", "-"))
    def test_every_cell_bounds_depth_and_accounts_exactly(self, policy):
        ctl = AdmissionController(policy, limit=3, seed=policy_grid().index(policy))
        outcomes = {"accepted": 0, "shed": 0}
        for rid in range(40):
            accepted, victims = ctl.admit(_get(rid, src=-1 if rid % 3 else 4))
            outcomes["accepted"] += 1 if accepted else 0
            outcomes["shed"] += len(victims) + (0 if accepted else 1)
            assert ctl.depth <= 3
        assert outcomes["shed"] == ctl.shed
        assert outcomes["accepted"] == ctl.admitted
        # Every admitted request is still queued or was shed-after-queue.
        assert ctl.admitted == ctl.depth + (ctl.shed - (40 - outcomes["accepted"]))


# ---------------------------------------------------------------------------
# the windowed latency tracker
# ---------------------------------------------------------------------------


class TestLatencyTracker:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            LatencyTracker(window=0.0)

    def test_quantiles_over_the_window(self):
        t = LatencyTracker(window=1.0)
        for i in range(100):
            t.record(0.5, i / 1000.0)
        assert t.count(1.0) == 100
        assert t.quantile(1.0, 0.5) == pytest.approx(0.050)
        assert t.p99(1.0) == pytest.approx(0.099)

    def test_samples_expire(self):
        t = LatencyTracker(window=1.0)
        t.record(0.0, 0.9)
        t.record(2.0, 0.1)
        assert t.count(2.5) == 1
        assert t.p99(2.5) == pytest.approx(0.1)

    def test_empty_window_is_zero(self):
        t = LatencyTracker(window=1.0)
        assert t.count(0.0) == 0 and t.p99(0.0) == 0.0
        t.record(0.0, 0.5)
        t.reset()
        assert t.count(0.0) == 0


# ---------------------------------------------------------------------------
# live flood: shed, redirect, conserve, conform — per policy cell
# ---------------------------------------------------------------------------


async def _flood(config: RuntimeConfig, rps: float = 600.0,
                 duration: float = 0.3, files: int = 2, seed: int = 7):
    """Boot, insert a hot file set, flood, quiesce, replay the oracle."""
    cluster = await LiveCluster.start(config)
    try:
        names = [f"hot-{i}.dat" for i in range(files)]
        boot = await RuntimeClient(cluster, min(cluster.nodes)).connect()
        for name in names:
            await boot.insert(name, f"payload of {name}")
        await boot.close()
        await cluster.drain()
        gen = LoadGenerator(cluster, names, WorkloadShape(kind="zipf", s=2.0),
                            seed=seed, timeout=2.0)
        report = await gen.run_open_loop(rps=rps, duration=duration)
        await gen.close()
        await cluster.quiesce()
        system = replay_oplog(cluster.oplog, config, cluster.initial_live)
        system.check_invariants()
        conformance = diff_states(cluster, system)
        shed_total = sum(n.shed_total for n in cluster.nodes.values())
        return report, conformance, shed_total
    finally:
        await cluster.shutdown()


def _overload_config(policy: OverloadPolicy, **kwargs) -> RuntimeConfig:
    base = dict(m=3, b=1, seed=7, inbox_limit=1, service_time=0.003,
                shed_policy=policy.shed, queue_policy=policy.queue,
                victim_policy=policy.victim)
    base.update(kwargs)
    return RuntimeConfig(**base)


@pytest.mark.runtime
@pytest.mark.parametrize("policy", policy_grid(),
                        ids=lambda p: p.cell.replace("/", "-"))
def test_flash_crowd_conserves_in_every_cell(policy):
    report, conformance, shed_total = asyncio.run(
        _flood(_overload_config(policy))
    )
    assert report.requests > 50
    assert report.conserved, report.as_dict()
    assert report.timeouts == 0
    assert conformance.ok, conformance.render()
    # The tiny admitted-work window under a hot zipf flood must shed.
    assert report.overloads > 0 and shed_total > 0


@pytest.mark.runtime
def test_overload_replies_redirect_to_live_replicas():
    policy = OverloadPolicy()  # conservative/fcfs/lifo
    report, conformance, _ = asyncio.run(_flood(_overload_config(policy)))
    assert report.conserved and conformance.ok
    # Redirect hints resolve: most refused requests retried somewhere
    # live and completed instead of dying shed.
    assert report.redirected > 0
    assert report.completed > report.shed


@pytest.mark.runtime
def test_unbounded_inbox_never_sheds():
    config = _overload_config(OverloadPolicy(), inbox_limit=0)
    report, conformance, shed_total = asyncio.run(_flood(config))
    assert shed_total == 0 and report.overloads == 0 and report.shed == 0
    assert report.conserved and conformance.ok


@pytest.mark.runtime
def test_slo_trigger_replicates_where_rate_trigger_would_not():
    # A single hot file, long service time, generous hit capacity: the
    # raw-rate trigger stays cold while the windowed p99 blows the tiny
    # SLO budget — only the SLO path can explain the extra replicas.
    async def run(slo_budget):
        config = RuntimeConfig(m=3, b=1, seed=7, service_time=0.01,
                               capacity=10_000.0, window=0.5,
                               slo_budget=slo_budget)
        cluster = await LiveCluster.start(config)
        try:
            boot = await RuntimeClient(cluster, min(cluster.nodes)).connect()
            await boot.insert("hot-0.dat", "payload")
            await boot.close()
            await cluster.drain()
            gen = LoadGenerator(cluster, ["hot-0.dat"], WorkloadShape(),
                                seed=7, timeout=2.0)
            await gen.run_open_loop(rps=300.0, duration=0.5)
            await gen.close()
            await cluster.quiesce()
            return cluster.replicas_created()
        finally:
            await cluster.shutdown()

    with_slo = asyncio.run(run(0.001))
    without_slo = asyncio.run(run(float("inf")))
    assert with_slo > without_slo, (with_slo, without_slo)
