"""DES tests for message-level update propagation (§2.2/§3/§4)."""

import pytest

from repro.core.liveness import SetLiveness
from repro.engine.des_driver import DesExperiment
from repro.workloads import UniformDemand


def make_exp(m=5, b=0, target=13, total_rate=800.0, capacity=100.0, dead=(), **kw):
    liveness = SetLiveness.all_but(m, dead=list(dead))
    rates = UniformDemand().rates(total_rate, liveness)
    return DesExperiment(
        m=m, target=target, entry_rates=rates, capacity=capacity,
        dead=set(dead), b=b, **kw
    )


def holder_versions(exp):
    return {
        pid: node.store.get(exp.file, count_access=False).version
        for pid, node in exp.nodes.items()
        if exp.file in node.store
    }


class TestDesUpdate:
    def test_update_reaches_all_replicas(self):
        # Let replication fan copies out, then broadcast an update late
        # in the run: every holder must converge to the new version.
        exp = make_exp(total_rate=800.0, capacity=100.0)
        exp.update_file(payload=b"v2", version=2, at_time=9.0)
        exp.run(duration=10.0)
        versions = holder_versions(exp)
        assert len(versions) > 1  # replication actually happened
        assert set(versions.values()) == {2}
        assert exp.metrics.counter("des.update_applied").value == len(versions)

    def test_update_with_dead_root_bypasses(self):
        exp = make_exp(dead=(13,), total_rate=600.0)
        exp.update_file(payload=b"v2", version=2, at_time=8.0)
        exp.run(duration=9.0)
        assert set(holder_versions(exp).values()) == {2}

    def test_update_in_fault_tolerant_mode(self):
        exp = make_exp(m=6, b=2, total_rate=400.0, capacity=10_000.0)
        exp.update_file(payload=b"v2", version=2, at_time=3.0)
        exp.run(duration=4.0)
        versions = holder_versions(exp)
        assert len(versions) == 4  # one home per subtree
        assert set(versions.values()) == {2}

    def test_non_holders_discard(self):
        exp = make_exp(total_rate=100.0, capacity=10_000.0)
        exp.update_file(payload=b"v2", version=2, at_time=2.0)
        exp.run(duration=3.0)
        # Single holder, so the root's non-holder children all discard.
        assert exp.metrics.counter("des.update_discards").value > 0
        assert exp.metrics.counter("des.update_applied").value == 1

    def test_stale_update_ignored(self):
        exp = make_exp(total_rate=100.0, capacity=10_000.0)
        exp.update_file(payload=b"v3", version=3, at_time=1.0)
        exp.update_file(payload=b"old", version=2, at_time=2.0)
        exp.run(duration=3.0)
        home = next(iter(holder_versions(exp)))
        copy = exp.nodes[home].store.get(exp.file, count_access=False)
        assert copy.version == 3
        assert copy.payload == b"v3"


class TestDesLossyTransport:
    def test_runs_under_message_loss(self):
        from repro.net.topology import ConstantLatency

        exp = make_exp(total_rate=300.0, capacity=10_000.0)
        exp.transport.loss_rate = 0.1
        result = exp.run(duration=6.0)
        # Some requests die in flight; nothing crashes and accounting
        # stays consistent.
        assert result.requests_served < result.requests_sent
        assert exp.metrics.counter("transport.dropped.loss").value > 0
