"""Unit tests for the invariant registry (repro.verify.invariants).

Each invariant must (a) pass on a healthy system and (b) catch a
hand-crafted corruption of exactly the property it owns.
"""

import pytest

from repro.node.storage import FileOrigin
from repro.verify.invariants import (
    AuditContext,
    InvariantViolation,
    LoadMonotonic,
    MetricsReconcile,
    PlacementInvariant,
    RequestLifecycle,
    RoutingReachability,
    SnapshotRoundTrip,
    SubtreePartition,
    TransportConservation,
    UpdateReach,
    VersionCoherence,
    default_invariants,
)
from repro.verify.scenario import Scenario, ScenarioEvent, ScenarioHarness


def harness(m=4, b=1, dead=(), events=()):
    h = ScenarioHarness(
        Scenario(m=m, b=b, seed=3, dead=list(dead), events=list(events))
    )
    for event in events:
        h.apply(event)
    return h


def loaded_harness(files=4, **kwargs):
    events = [ScenarioEvent("insert", {"file": f"f{i}"}) for i in range(files)]
    return harness(events=events, **kwargs)


def ctx_of(h):
    return AuditContext(harness=h)


class TestRegistry:
    def test_default_registry_names_unique(self):
        invariants = default_invariants()
        names = [inv.name for inv in invariants]
        assert len(invariants) >= 8
        assert len(set(names)) == len(names)

    def test_all_pass_on_healthy_system(self):
        h = loaded_harness()
        h.apply(ScenarioEvent("replicate", {"file": "f0", "holder": 0}))
        h.apply(ScenarioEvent("update", {"file": "f1"}))
        h.apply(ScenarioEvent("net", {"messages": 8, "loss_rate": 0.2, "seed": 1}))
        ctx = ctx_of(h)
        for invariant in default_invariants():
            invariant.check(ctx)  # must not raise

    def test_all_pass_on_single_node_system(self):
        h = loaded_harness(m=4, b=0, dead=range(1, 16), files=2)
        ctx = ctx_of(h)
        for invariant in default_invariants():
            invariant.check(ctx)


class TestRoutingReachability:
    def test_catches_unroutable_copy(self):
        h = loaded_harness()
        # Vaporise every copy of f0 without touching the catalog: every
        # live requester now routes into nothing.
        for pid in h.system.holders_of("f0"):
            h.system.stores[pid].discard("f0")
        with pytest.raises(InvariantViolation, match="found no copy"):
            RoutingReachability().check(ctx_of(h))

    def test_lost_files_exempt(self):
        h = loaded_harness()
        for pid in h.system.holders_of("f0"):
            h.system.stores[pid].discard("f0")
        h.system.faults.append("f0")
        RoutingReachability().check(ctx_of(h))


class TestPlacement:
    def test_catches_duplicate_inserted_copy(self):
        h = loaded_harness()
        system = h.system
        home = system.holders_of("f0")[0]
        wrong = next(
            pid for pid in sorted(system.membership.live_pids())
            if pid != home and "f0" not in system.stores[pid]
        )
        copy = system.stores[home].get("f0", count_access=False)
        system.stores[wrong].store("f0", copy.payload, copy.version, FileOrigin.INSERTED)
        with pytest.raises(InvariantViolation, match="inserted copies"):
            PlacementInvariant().check(ctx_of(h))

    def test_catches_store_at_dead_pid(self):
        from repro.node.storage import FileStore

        h = loaded_harness(dead=[5])
        h.system.stores[5] = FileStore()
        with pytest.raises(InvariantViolation, match="stores exist"):
            PlacementInvariant().check(ctx_of(h))


class TestSubtreePartition:
    def test_passes_across_b(self):
        for b in (0, 1, 2):
            SubtreePartition().check(ctx_of(loaded_harness(m=4, b=b)))


class TestUpdateReach:
    def test_catches_orphan_replica(self):
        h = loaded_harness(b=0)
        system = h.system
        home = system.holders_of("f0")[0]
        copy = system.stores[home].get("f0", count_access=False)
        # Park a replica at a node with no holder chain to it — the
        # top-down broadcast discards before ever reaching it.
        for pid in sorted(system.membership.live_pids(), reverse=True):
            if "f0" in system.stores[pid]:
                continue
            system.stores[pid].store(
                "f0", copy.payload, copy.version, FileOrigin.REPLICATED
            )
            if pid not in system.reachable_holders("f0"):
                break  # genuinely orphaned
            system.stores[pid].remove("f0")
        else:  # pragma: no cover - every node on the broadcast path
            pytest.skip("no orphanable position in this tiny system")
        with pytest.raises(InvariantViolation, match="orphans"):
            UpdateReach().check(ctx_of(h))


class TestLoadMonotonic:
    def test_observes_and_passes_on_real_replication(self):
        h = loaded_harness()
        event = ScenarioEvent("replicate", {"file": "f0", "holder": 0})
        ctx = AuditContext(harness=h, step=0, event=event)
        invariant = LoadMonotonic()
        invariant.observe_before(ctx)
        assert invariant.name in ctx.before
        h.apply(event)
        invariant.check(ctx)

    def test_catches_load_increase(self):
        h = loaded_harness()
        event = ScenarioEvent("replicate", {"file": "f0", "holder": 0})
        ctx = AuditContext(harness=h, step=0, event=event)
        invariant = LoadMonotonic()
        invariant.observe_before(ctx)
        h.apply(event)
        # Doctor the recorded pre-state so "after" looks like a strict
        # increase — the comparison logic is what's under test.
        ctx.before[invariant.name]["max"] = 0.0
        with pytest.raises(InvariantViolation, match="raised the max"):
            invariant.check(ctx)


class TestVersionCoherence:
    def test_catches_stale_copy(self):
        h = loaded_harness()
        h.apply(ScenarioEvent("update", {"file": "f0"}))
        system = h.system
        pid = system.holders_of("f0")[0]
        system.stores[pid].get("f0", count_access=False).version = 1
        with pytest.raises(InvariantViolation, match="catalog says"):
            VersionCoherence().check(ctx_of(h))


class TestMetricsReconcile:
    def test_catches_counter_without_trace(self):
        h = loaded_harness()
        h.system.metrics.counter("system.inserts").inc()
        with pytest.raises(InvariantViolation, match="system.inserts"):
            MetricsReconcile().check(ctx_of(h))

    def test_catches_drop_reason_mismatch(self):
        h = loaded_harness()
        h.apply(ScenarioEvent("net", {"messages": 10, "loss_rate": 0.3, "seed": 2}))
        h.system.metrics.counter("transport.dropped.loss").inc()
        with pytest.raises(InvariantViolation, match="transport.dropped.loss"):
            MetricsReconcile().check(ctx_of(h))


class TestTransportConservation:
    def test_catches_unaccounted_send(self):
        h = loaded_harness()
        h.apply(ScenarioEvent("net", {"messages": 10, "loss_rate": 0.0, "seed": 2}))
        h.system.metrics.counter("transport.sent").inc()
        with pytest.raises(InvariantViolation, match="transport.sent"):
            TransportConservation().check(ctx_of(h))

    def test_tolerates_in_flight_messages(self):
        h = loaded_harness()
        # Queue a send without draining the engine: counters cannot
        # balance yet, and the invariant must not fire.
        from repro.net.message import Message, MessageKind

        h.transport.register(1, lambda m: None)
        h.transport.send(Message(MessageKind.GET, src=0, dst=1))
        assert h.engine.pending
        TransportConservation().check(ctx_of(h))


class TestRequestLifecycle:
    def _lossy_harness(self, max_attempts=6):
        h = loaded_harness(files=2)
        h.apply(ScenarioEvent("reliable_workload", {
            "requests": 20, "loss_rate": 0.25,
            "max_attempts": max_attempts, "seed": 7,
        }))
        return h

    def test_registered_by_default(self):
        names = [inv.name for inv in default_invariants()]
        assert "request-lifecycle-conservation" in names

    def test_passes_after_lossy_retried_workload(self):
        h = self._lossy_harness()
        assert h.system.metrics.counter("request.retried").value > 0
        RequestLifecycle().check(ctx_of(h))

    def test_passes_with_dead_letters_present(self):
        h = self._lossy_harness(max_attempts=1)
        assert h.reliability.dead_letters
        RequestLifecycle().check(ctx_of(h))

    def test_catches_counter_drift(self):
        h = self._lossy_harness()
        h.system.metrics.counter("request.issued").inc()
        with pytest.raises(InvariantViolation, match="request.issued"):
            RequestLifecycle().check(ctx_of(h))

    def test_catches_dropped_timeout_event(self):
        from repro.net.message import Message, MessageKind

        h = self._lossy_harness()
        # A request to a never-registered PID always drops "dead"; with
        # its deadline cancelled it is stuck inflight forever.
        message = Message(MessageKind.GET, src=-1, dst=-2, file="doomed")
        h.reliability.issue(message, send=h.transport.send)
        h.reliability._inflight[message.request_id].pending.cancel()
        h.engine.run()
        with pytest.raises(InvariantViolation, match="timeout event was lost"):
            RequestLifecycle().check(ctx_of(h))

    def test_catches_completed_and_dead_lettered_overlap(self):
        h = self._lossy_harness(max_attempts=1)
        letter = h.reliability.dead_letters[0]
        h.reliability._completed_ids.add(letter.request_id)
        # Keep issued == completed + inflight + expired balanced so the
        # overlap clause (not conservation) is what fires.
        h.system.metrics.counter("request.issued").inc()
        h.system.metrics.counter("request.completed").inc()
        with pytest.raises(
            InvariantViolation, match="both completed and dead-lettered"
        ):
            RequestLifecycle().check(ctx_of(h))

    def test_no_tracker_is_a_pass(self):
        h = loaded_harness()
        h.reliability = None
        RequestLifecycle().check(ctx_of(h))


class TestSnapshotRoundTrip:
    def test_passes_after_churn_and_updates(self):
        h = loaded_harness()
        h.apply(ScenarioEvent("update", {"file": "f2"}))
        h.apply(ScenarioEvent("fail", {"pid": sorted(h.system.membership.live_pids())[0]}))
        SnapshotRoundTrip().check(ctx_of(h))

    def test_catches_unserializable_state(self):
        h = loaded_harness()
        system = h.system
        pid = system.holders_of("f0")[0]
        system.stores[pid].get("f0", count_access=False).payload = {1, 2}
        with pytest.raises(InvariantViolation, match="not JSON-serializable"):
            SnapshotRoundTrip().check(ctx_of(h))
