"""Tests for heterogeneous per-node capacities in the fluid engine."""

import random

import numpy as np
import pytest

from repro.baselines import LessLogPolicy
from repro.core.errors import ConfigurationError
from repro.core.liveness import AllLive
from repro.core.tree import LookupTree
from repro.engine.fluid import FluidSimulation
from repro.experiments.extensions import heterogeneity_study
from repro.workloads import UniformDemand

M = 6
N = 1 << M


def make_sim(capacity, total_rate=1000.0, r=13, seed=0):
    liveness = AllLive(M)
    rates = UniformDemand().rates(total_rate, liveness)
    return FluidSimulation(
        LookupTree(r, M), liveness, rates, capacity=capacity,
        rng=random.Random(seed),
    )


class TestCapacityVector:
    def test_scalar_still_works(self):
        sim = make_sim(100.0)
        assert sim.capacity == 100.0
        assert np.all(sim.capacities == 100.0)

    def test_vector_accepted(self):
        caps = np.full(N, 100.0)
        caps[13] = 10.0
        sim = make_sim(caps)
        assert sim.capacities[13] == 10.0
        assert sim.capacity == 10.0  # tightest budget

    def test_wrong_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            make_sim(np.full(7, 100.0))

    def test_nonpositive_rejected(self):
        caps = np.full(N, 100.0)
        caps[0] = 0.0
        with pytest.raises(ConfigurationError):
            make_sim(caps)


class TestHeterogeneousBalance:
    def test_weak_home_sheds_to_its_budget(self):
        caps = np.full(N, 10_000.0)
        caps[13] = 50.0  # the home is weak
        sim = make_sim(caps, total_rate=1000.0)
        result = sim.balance(LessLogPolicy())
        assert result.balanced
        assert result.flows.served[13] <= 50.0

    def test_strong_home_needs_no_replicas(self):
        caps = np.full(N, 20.0)
        caps[13] = 10_000.0  # only the home is strong
        sim = make_sim(caps, total_rate=1000.0)
        result = sim.balance(LessLogPolicy())
        assert result.replicas_created == 0
        assert result.balanced

    def test_every_holder_within_own_budget(self):
        gen = np.random.default_rng(3)
        caps = gen.uniform(40.0, 400.0, size=N)
        sim = make_sim(caps, total_rate=2000.0)
        result = sim.balance(LessLogPolicy())
        for holder, served in result.flows.served.items():
            if holder not in result.unresolved:
                assert served <= caps[holder] + 1e-9

    def test_overloaded_ordering_by_excess(self):
        caps = np.full(N, 10_000.0)
        caps[13] = 10.0
        sim = make_sim(caps, total_rate=1000.0)
        over = sim.overloaded()
        assert over[0] == 13


class TestHeterogeneityStudy:
    def test_uniform_baseline_matches_scalar(self):
        result = heterogeneity_study(m=6, total_rate=1000.0, cvs=(0.0,))
        from repro.experiments.figures import replicas_to_balance
        from repro.experiments.config import FigureConfig

        # cv=0 reduces to the paper's uniform-capacity model.
        assert result.value("unresolved nodes", 0.0) == 0
        assert result.value("replicas", 0.0) > 0

    def test_extreme_heterogeneity_can_be_unresolvable(self):
        result = heterogeneity_study(
            m=6, total_rate=2000.0, cvs=(0.0, 2.0), seed=1
        )
        assert result.value("unresolved nodes", 0.0) == 0
        # With cv=2 some nodes' direct load exceeds their budget.
        assert result.value("unresolved nodes", 2.0) >= 0  # never negative
