"""Tests for the precomputed RoutingTable and its liveness-keyed cache."""

import random

import numpy as np
import pytest

from repro.core.children import (
    advanced_children_list,
    has_live_node_above,
    live_subtree_size,
)
from repro.core.liveness import AllLive, SetLiveness
from repro.core.routing import (
    RoutingTable,
    first_alive_ancestor,
    routing_table,
    routing_table_cache_clear,
    routing_table_cache_info,
    storage_node,
)
from repro.core.tree import LookupTree


def _random_liveness(rng, m, root):
    n = 1 << m
    alive = set(rng.sample(range(n), rng.randint(max(2, n // 4), n)))
    alive.add(root)
    return SetLiveness(m=m, live=alive)


class TestAgainstScalarPrimitives:
    """The table must agree with the per-node scalar routines."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_configurations(self, seed):
        rng = random.Random(seed)
        m = rng.choice([4, 5, 6, 7])
        n = 1 << m
        root = rng.randrange(n)
        tree = LookupTree(root, m)
        liveness = (
            AllLive(m) if rng.random() < 0.25
            else _random_liveness(rng, m, root)
        )
        table = routing_table(tree, liveness)
        assert table.home == storage_node(tree, liveness)
        for pid in range(n):
            if not liveness.is_live(pid):
                assert table.next_hop[pid] == -1
                continue
            ancestor = first_alive_ancestor(tree, pid, liveness)
            expected = ancestor if ancestor is not None else table.home
            assert table.next_hop[pid] == expected, pid
            assert table.has_live_above(pid) == has_live_node_above(
                tree, pid, liveness
            )
            assert table.live_subtree[pid] == live_subtree_size(
                tree, pid, liveness
            )
            assert list(table.children_list(pid, tree, liveness)) == (
                advanced_children_list(tree, pid, liveness)
            )

    def test_waves_are_topological(self):
        rng = random.Random(7)
        tree = LookupTree(13, 6)
        liveness = _random_liveness(rng, 6, 13)
        table = routing_table(tree, liveness)
        seen = set()
        for wave in table.waves:
            for pid in wave.tolist():
                # A source's forwarding target must be in a LATER wave
                # (or be the home), so its inflow is final when it pushes.
                assert pid not in seen
                seen.add(pid)
                target = int(table.next_hop[pid])
                assert target not in seen or target == table.home
        live_non_home = {
            pid for pid in liveness.live_pids() if pid != table.home
        }
        assert seen == live_non_home


class TestCache:
    def setup_method(self):
        routing_table_cache_clear()

    def test_same_epoch_reuses_identical_object(self):
        tree = LookupTree(5, 5)
        liveness = SetLiveness(m=5, live=set(range(32)) - {3, 9})
        first = routing_table(tree, liveness)
        second = routing_table(tree, liveness)
        assert second is first
        info = routing_table_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_mutation_bumps_epoch_and_invalidates(self):
        tree = LookupTree(5, 5)
        liveness = SetLiveness(m=5, live=set(range(32)))
        before = routing_table(tree, liveness)
        epoch_before = liveness.epoch
        liveness.remove(17)
        assert liveness.epoch > epoch_before
        after = routing_table(tree, liveness)
        assert after is not before
        assert after.next_hop[17] == -1
        assert before.next_hop[17] != -1

    def test_noop_mutation_keeps_epoch_and_table(self):
        tree = LookupTree(5, 5)
        liveness = SetLiveness(m=5, live=set(range(32)))
        before = routing_table(tree, liveness)
        epoch_before = liveness.epoch
        liveness.add(4)  # already live: membership unchanged
        assert liveness.epoch == epoch_before
        assert routing_table(tree, liveness) is before

    def test_content_equal_views_share_one_table(self):
        """A pickled/rebuilt view with the same live set hits the cache."""
        tree = LookupTree(9, 5)
        live = set(range(32)) - {1, 2}
        first = routing_table(tree, SetLiveness(m=5, live=set(live)))
        second = routing_table(tree, SetLiveness(m=5, live=set(live)))
        assert second is first

    def test_all_live_views_share_one_table(self):
        tree = LookupTree(9, 5)
        assert routing_table(tree, AllLive(5)) is routing_table(tree, AllLive(5))

    def test_different_roots_get_different_tables(self):
        liveness = AllLive(5)
        a = routing_table(LookupTree(3, 5), liveness)
        b = routing_table(LookupTree(4, 5), liveness)
        assert a is not b

    def test_uncacheable_view_gets_fresh_tables(self):
        class Bare:
            """A liveness view without ``cache_token`` → never cached."""

            @property
            def m(self):
                return 4

            def is_live(self, pid):
                return True

            def live_pids(self):
                return iter(range(16))

            def live_count(self):
                return 16

        tree = LookupTree(3, 4)
        a = routing_table(tree, Bare())
        b = routing_table(tree, Bare())
        assert isinstance(a, RoutingTable) and a is not b

    def test_cache_clear_resets_counters(self):
        tree = LookupTree(2, 4)
        routing_table(tree, AllLive(4))
        routing_table_cache_clear()
        info = routing_table_cache_info()
        assert info == {**info, "hits": 0, "misses": 0, "size": 0}


class TestArrayInternals:
    def test_vid_and_order_consistency(self):
        tree = LookupTree(21, 6)
        liveness = AllLive(6)
        table = routing_table(tree, liveness)
        vids = table.vids
        assert sorted(int(v) for v in vids) == list(range(64))
        assert np.all(np.diff(vids[table.order]) > 0)
        assert np.all(np.diff(table.live_pids_asc) > 0)

    def test_live_mask_matches_view(self):
        rng = random.Random(3)
        liveness = _random_liveness(rng, 5, 11)
        table = routing_table(LookupTree(11, 5), liveness)
        for pid in range(32):
            assert bool(table.live[pid]) == liveness.is_live(pid)
