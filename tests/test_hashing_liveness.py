"""Unit tests for ψ hashing and liveness views."""

import pytest

from repro.core.hashing import Psi, psi
from repro.core.liveness import AllLive, SetLiveness


class TestPsi:
    def test_deterministic(self):
        h = Psi(m=10)
        assert h("file-a") == h("file-a")

    def test_in_range(self):
        h = Psi(m=6)
        for i in range(200):
            assert 0 <= h(f"f{i}") < 64

    def test_salt_changes_placement(self):
        a, b = Psi(10, salt="a"), Psi(10, salt="b")
        names = [f"f{i}" for i in range(50)]
        assert any(a(n) != b(n) for n in names)

    def test_spread_is_roughly_uniform(self):
        h = Psi(m=4)
        counts = [0] * 16
        for i in range(1600):
            counts[h(f"file-{i}")] += 1
        # Expect ~100 per bucket; allow generous slack.
        assert min(counts) > 50 and max(counts) < 170

    def test_find_name_for_target(self):
        h = Psi(m=6)
        name = h.find_name_for_target(37)
        assert h(name) == 37

    def test_find_name_rejects_bad_target(self):
        with pytest.raises(ValueError):
            Psi(m=4).find_name_for_target(16)

    def test_functional_shorthand(self):
        assert psi("x", 8, salt="s") == Psi(8, "s")("x")

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Psi(m=0)


class TestAllLive:
    def test_everything_live(self):
        view = AllLive(4)
        assert view.live_count() == 16
        assert all(view.is_live(p) for p in range(16))
        assert list(view.live_pids()) == list(range(16))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            AllLive(4).is_live(16)


class TestSetLiveness:
    def test_all_but(self):
        view = SetLiveness.all_but(4, dead=[3, 7])
        assert view.live_count() == 14
        assert not view.is_live(3)
        assert view.is_live(0)

    def test_add_remove(self):
        view = SetLiveness(4, live=[1, 2])
        view.add(5)
        assert view.is_live(5)
        view.remove(1)
        assert not view.is_live(1)
        assert view.live_count() == 2

    def test_live_pids_sorted(self):
        view = SetLiveness(4, live=[9, 1, 4])
        assert list(view.live_pids()) == [1, 4, 9]

    def test_contains(self):
        view = SetLiveness(4, live=[2])
        assert 2 in view and 3 not in view

    def test_rejects_out_of_range_member(self):
        with pytest.raises(ValueError):
            SetLiveness(4, live=[99])

    def test_remove_missing_is_noop(self):
        view = SetLiveness(4, live=[2])
        view.remove(3)
        assert view.live_count() == 1
