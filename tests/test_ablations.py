"""Tests for the ablation studies and their policy variants."""

import random

import pytest

from repro.baselines.base import PlacementContext
from repro.core.liveness import AllLive, SetLiveness
from repro.core.tree import LookupTree
from repro.experiments.ablations import (
    LeastOffspringPolicy,
    OwnListOnlyPolicy,
    RandomChildPolicy,
    RootListOnlyPolicy,
    children_order_ablation,
    concurrency_ablation,
    proportional_choice_ablation,
)
from repro.experiments.config import FigureConfig

CFG = FigureConfig(m=7, rates=(1000.0, 3000.0))


def ctx(seed=0):
    return PlacementContext(rng=random.Random(seed))


class TestAblationPolicies:
    def test_least_offspring_picks_tail(self):
        tree = LookupTree(4, 4)
        # Children list of P(4) = (5, 6, 0, 12): tail is 12.
        assert LeastOffspringPolicy().choose(tree, 4, AllLive(4), {4}, ctx()) == 12

    def test_least_offspring_exhaustion(self):
        tree = LookupTree(4, 4)
        assert (
            LeastOffspringPolicy().choose(
                tree, 4, AllLive(4), {4, 5, 6, 0, 12}, ctx()
            )
            is None
        )

    def test_random_child_stays_in_list(self):
        tree = LookupTree(4, 4)
        for seed in range(20):
            got = RandomChildPolicy().choose(tree, 4, AllLive(4), {4}, ctx(seed))
            assert got in {5, 6, 0, 12}

    def test_random_child_exhaustion(self):
        tree = LookupTree(4, 4)
        assert (
            RandomChildPolicy().choose(tree, 4, AllLive(4), {4, 5, 6, 0, 12}, ctx())
            is None
        )

    def test_own_list_only_matches_ck(self):
        tree = LookupTree(4, 4)
        assert OwnListOnlyPolicy().choose(tree, 4, AllLive(4), {4}, ctx()) == 5

    def test_root_list_only_at_top_node(self):
        # P(4), P(5) dead: P(6) is the top holder; root-list-only must
        # replicate into the root's children list, not P(6)'s.
        tree = LookupTree(4, 4)
        liveness = SetLiveness.all_but(4, dead=[4, 5])
        got = RootListOnlyPolicy().choose(tree, 6, liveness, {6}, ctx())
        from repro.core.children import advanced_children_list

        assert got in advanced_children_list(tree, 4, liveness)

    def test_root_list_only_interior_node_unchanged(self):
        tree = LookupTree(4, 4)
        assert RootListOnlyPolicy().choose(tree, 5, AllLive(4), {4, 5}, ctx()) == (
            tree.children(5)[0]
        )


class TestAblationStudies:
    def test_children_order_paper_rule_wins(self):
        result = children_order_ablation(CFG)
        for rate in result.xs():
            paper = result.value("most-offspring (paper)", rate)
            assert paper <= result.value("least-offspring", rate)
            assert paper <= result.value("random-child", rate)

    def test_proportional_choice_balances_where_own_fails(self):
        result = proportional_choice_ablation(CFG.with_(m=8, rates=(2000.0,)))
        assert result.value("proportional (paper) unbalanced", 2000.0) == 0
        assert result.value("own-list-only unbalanced", 2000.0) == 1

    def test_concurrency_same_replicas_fewer_rounds(self):
        result = concurrency_ablation(CFG)
        for rate in result.xs():
            assert result.value("concurrent replicas", rate) == result.value(
                "serial replicas", rate
            )
            assert result.value("concurrent rounds", rate) < result.value(
                "serial rounds", rate
            )
