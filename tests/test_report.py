"""Tests for the reproduction-report generator."""

import pytest

from repro.experiments.report import CLAIMS, generate_report


class TestClaims:
    def test_every_figure_has_a_claim(self):
        assert {"fig5", "fig6", "fig7", "fig8"} <= set(CLAIMS)

    def test_claims_reference_known_experiments(self):
        from repro.experiments.runner import EXPERIMENTS

        assert set(CLAIMS) <= set(EXPERIMENTS)


class TestGenerateReport:
    def test_single_experiment_report(self):
        text = generate_report(["ext-lookup"], fast=True, charts=False)
        assert "# LessLog reproduction report" in text
        assert "ext-lookup" in text
        assert "lookup path length" in text
        assert "PASS" in text or "FAIL" in text

    def test_summary_line_counts(self):
        text = generate_report(["fig5"], fast=True, charts=False)
        assert "**Summary: 1 claims reproduced, 0 failed, 0 informational.**" in text

    def test_informational_experiments_marked(self):
        text = generate_report(["ext-churn"], fast=True, charts=False)
        assert "informational" in text

    def test_charts_included_when_requested(self):
        text = generate_report(["ext-lookup"], fast=True, charts=True)
        assert " o = " in text  # chart legend marker

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            generate_report(["fig99"], fast=True)


class TestCliReport(object):
    def test_cli_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "r.md"
        assert main(["report", "--only", "ext-lookup", "-o", str(out)]) == 0
        assert out.exists()
        assert "reproduction report" in out.read_text()

    def test_cli_report_unknown_id(self, capsys):
        from repro.cli import main

        assert main(["report", "--only", "nope"]) == 2
