"""Unit tests for demand models and request streams (repro.workloads)."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.liveness import AllLive, SetLiveness
from repro.workloads import (
    LocalityDemand,
    RequestStream,
    UniformDemand,
    ZipfDemand,
    validate_rates,
)


class TestUniformDemand:
    def test_rates_sum_and_spread(self):
        live = AllLive(4)
        rates = UniformDemand().rates(1600.0, live)
        validate_rates(rates, 1600.0, live)
        assert np.allclose(rates, 100.0)

    def test_dead_nodes_get_zero(self):
        live = SetLiveness.all_but(4, dead=[0, 1])
        rates = UniformDemand().rates(1400.0, live)
        validate_rates(rates, 1400.0, live)
        assert rates[0] == 0.0 and rates[1] == 0.0
        assert rates[2] == pytest.approx(100.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformDemand().rates(-1.0, AllLive(4))

    def test_no_live_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformDemand().rates(1.0, SetLiveness(4, live=[]))


class TestLocalityDemand:
    def test_eighty_twenty_split(self):
        live = AllLive(5)  # 32 nodes
        model = LocalityDemand(hot_fraction=0.25, hot_share=0.8, seed=1)
        rates = model.rates(3200.0, live)
        validate_rates(rates, 3200.0, live)
        hot = model.hot_nodes(live)
        assert len(hot) == 8
        assert sum(rates[p] for p in hot) == pytest.approx(3200.0 * 0.8)

    def test_hot_nodes_deterministic_per_seed(self):
        live = AllLive(5)
        a = LocalityDemand(seed=3).hot_nodes(live)
        b = LocalityDemand(seed=3).hot_nodes(live)
        c = LocalityDemand(seed=4).hot_nodes(live)
        assert a == b
        assert a != c

    def test_hot_nodes_are_live(self):
        live = SetLiveness.all_but(5, dead=list(range(10)))
        model = LocalityDemand(seed=0)
        for pid in model.hot_nodes(live):
            assert live.is_live(pid)

    def test_default_is_paper_80_20(self):
        model = LocalityDemand()
        assert model.hot_fraction == 0.2 and model.hot_share == 0.8

    def test_bad_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            LocalityDemand(hot_fraction=0.0)
        with pytest.raises(ConfigurationError):
            LocalityDemand(hot_share=1.5)


class TestZipfDemand:
    def test_rates_sum(self):
        live = AllLive(5)
        rates = ZipfDemand(s=1.2, seed=2).rates(1000.0, live)
        validate_rates(rates, 1000.0, live)

    def test_zero_exponent_is_uniform(self):
        live = AllLive(4)
        rates = ZipfDemand(s=0.0).rates(1600.0, live)
        assert np.allclose(rates[rates > 0], 100.0)

    def test_skew_increases_with_s(self):
        live = AllLive(6)
        flat = ZipfDemand(s=0.5, seed=1).rates(1000.0, live)
        steep = ZipfDemand(s=2.0, seed=1).rates(1000.0, live)
        assert steep.max() > flat.max()

    def test_negative_s_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfDemand(s=-0.1)


class TestRequestStream:
    def test_generate_respects_duration(self):
        rates = UniformDemand().rates(1000.0, AllLive(4))
        stream = RequestStream(rates, "f", seed=1)
        reqs = list(stream.generate(duration=2.0))
        assert reqs
        assert all(0.0 < r.time <= 2.0 for r in reqs)
        times = [r.time for r in reqs]
        assert times == sorted(times)

    def test_rate_statistically_close(self):
        rates = UniformDemand().rates(500.0, AllLive(4))
        stream = RequestStream(rates, "f", seed=2)
        reqs = list(stream.generate(duration=20.0))
        assert len(reqs) == pytest.approx(10_000, rel=0.1)

    def test_entries_only_where_rate_positive(self):
        live = SetLiveness.all_but(4, dead=[0, 1, 2])
        rates = UniformDemand().rates(800.0, live)
        stream = RequestStream(rates, "f", seed=3)
        for r in stream.sample_batch(500):
            assert rates[r.entry] > 0

    def test_locality_stream_is_skewed(self):
        live = AllLive(6)
        model = LocalityDemand(seed=0)
        rates = model.rates(1000.0, live)
        stream = RequestStream(rates, "f", seed=4)
        hot = set(model.hot_nodes(live))
        reqs = stream.sample_batch(4000)
        hot_count = sum(1 for r in reqs if r.entry in hot)
        assert 0.7 < hot_count / len(reqs) < 0.9

    def test_deterministic_per_seed(self):
        rates = UniformDemand().rates(100.0, AllLive(4))
        a = RequestStream(rates, "f", seed=5).sample_batch(50)
        b = RequestStream(rates, "f", seed=5).sample_batch(50)
        assert a == b

    def test_zero_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestStream(np.zeros(16), "f")

    def test_negative_duration_rejected(self):
        rates = UniformDemand().rates(10.0, AllLive(4))
        with pytest.raises(ConfigurationError):
            list(RequestStream(rates, "f").generate(-1.0))
