"""Unit tests for the network substrate (repro.net)."""

import random

import pytest

from repro.net import (
    ConstantLatency,
    CoordinateLatency,
    Message,
    MessageKind,
    Transport,
    UniformLatency,
)
from repro.sim import Engine, Tracer


class TestMessage:
    def test_forwarded_increments_hops(self):
        msg = Message(MessageKind.GET, src=-1, dst=3, file="f")
        fwd = msg.forwarded(3, 7)
        assert (fwd.src, fwd.dst, fwd.hops) == (3, 7, 1)
        assert fwd.request_id == msg.request_id
        assert msg.hops == 0  # original untouched

    def test_reply_swaps_direction(self):
        msg = Message(MessageKind.GET, src=2, dst=9, file="f")
        reply = msg.reply(MessageKind.GET_REPLY, payload=b"x")
        assert (reply.src, reply.dst) == (9, 2)
        assert reply.payload == b"x"
        assert reply.request_id == msg.request_id

    def test_request_ids_unique(self):
        a = Message(MessageKind.GET, 0, 1)
        b = Message(MessageKind.GET, 0, 1)
        assert a.request_id != b.request_id


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.05)
        assert model.delay(1, 2) == 0.05
        assert model.delay(3, 3) == 0.0

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)

    def test_uniform_within_bounds(self):
        model = UniformLatency(0.01, 0.02, rng=random.Random(0))
        for _ in range(50):
            assert 0.01 <= model.delay(0, 1) < 0.02
        assert model.delay(5, 5) == 0.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformLatency(0.2, 0.1)

    def test_coordinate_symmetric_and_deterministic(self):
        model = CoordinateLatency(16, seed=1)
        assert model.delay(2, 9) == model.delay(9, 2)
        assert model.delay(2, 9) == CoordinateLatency(16, seed=1).delay(2, 9)
        assert model.delay(4, 4) == 0.0
        assert model.delay(2, 9) >= model.base

    def test_coordinate_range_check(self):
        model = CoordinateLatency(4)
        with pytest.raises(ValueError):
            model.delay(0, 7)


class TestTransport:
    def test_delivery_after_latency(self):
        engine = Engine()
        transport = Transport(engine, latency=ConstantLatency(0.5))
        received = []
        transport.register(1, lambda m: received.append((engine.now, m.file)))
        transport.send(Message(MessageKind.GET, src=0, dst=1, file="f"))
        engine.run()
        assert received == [(0.5, "f")]

    def test_delivery_to_unregistered_is_dropped(self):
        engine = Engine()
        transport = Transport(engine)
        transport.send(Message(MessageKind.GET, src=0, dst=42))
        engine.run()
        assert transport.metrics.counter("transport.dropped.dead").value == 1

    def test_unregister_mid_flight_drops(self):
        engine = Engine()
        transport = Transport(engine, latency=ConstantLatency(1.0))
        received = []
        transport.register(1, lambda m: received.append(m))
        transport.send(Message(MessageKind.GET, src=0, dst=1))
        transport.unregister(1)
        engine.run()
        assert received == []
        assert transport.metrics.counter("transport.dropped.dead").value == 1

    def test_loss_rate(self):
        engine = Engine()
        transport = Transport(engine, loss_rate=0.5, rng=random.Random(3))
        received = []
        transport.register(1, lambda m: received.append(m))
        for _ in range(200):
            transport.send(Message(MessageKind.GET, src=0, dst=1))
        engine.run()
        lost = transport.metrics.counter("transport.dropped.loss").value
        assert lost + len(received) == 200
        assert 60 < lost < 140

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            Transport(Engine(), loss_rate=1.0)

    def test_drop_accounting_reconciles_by_reason(self):
        # Both drop causes share the transport.dropped.* family and the
        # "drop" trace kind, split by a reason field, so that
        # sent == delivered + dropped.loss + dropped.dead exactly.
        engine = Engine()
        tracer = Tracer()
        transport = Transport(
            engine, loss_rate=0.3, rng=random.Random(7), tracer=tracer
        )
        transport.register(1, lambda m: None)
        for dst in (1, 1, 1, 42, 42):
            for _ in range(40):
                transport.send(Message(MessageKind.GET, src=0, dst=dst))
        engine.run()
        sent = transport.metrics.counter("transport.sent").value
        delivered = transport.metrics.counter("transport.delivered").value
        lost = transport.metrics.counter("transport.dropped.loss").value
        dead = transport.metrics.counter("transport.dropped.dead").value
        assert sent == 200
        assert lost > 0 and dead > 0
        assert delivered + lost + dead == sent
        reasons = [r.data["reason"] for r in tracer.of_kind("drop")]
        assert reasons.count("loss") == lost
        assert reasons.count("dead") == dead

    def test_tracer_records_sends(self):
        engine = Engine()
        tracer = Tracer()
        transport = Transport(engine, tracer=tracer)
        transport.register(1, lambda m: None)
        transport.send(Message(MessageKind.INSERT, src=0, dst=1, file="f"))
        engine.run()
        sends = tracer.of_kind("send")
        assert len(sends) == 1
        assert sends[0].data["msg_kind"] == "insert"

    def test_fifo_between_same_endpoints(self):
        engine = Engine()
        transport = Transport(engine, latency=ConstantLatency(0.1))
        received = []
        transport.register(1, lambda m: received.append(m.payload))
        for i in range(5):
            transport.send(Message(MessageKind.GET, src=0, dst=1, payload=i))
        engine.run()
        assert received == [0, 1, 2, 3, 4]

    def test_deliver_local_is_synchronous(self):
        engine = Engine()
        transport = Transport(engine)
        received = []
        transport.register(1, lambda m: received.append(m))
        transport.deliver_local(Message(MessageKind.GET, src=1, dst=1))
        assert len(received) == 1

    def test_deliver_local_counts_as_sent(self):
        # Regression: local delivery used to bypass the transport.sent
        # counter and the "send" trace, so runs mixing self-delivery
        # with wire sends broke sent == delivered + dropped.* and the
        # counter/trace reconciliation.
        engine = Engine()
        tracer = Tracer()
        transport = Transport(
            engine, loss_rate=0.3, rng=random.Random(5), tracer=tracer
        )
        transport.register(1, lambda m: None)
        for _ in range(20):
            transport.deliver_local(Message(MessageKind.GET, src=1, dst=1))
        for dst in (1, 42):
            for _ in range(40):
                transport.send(Message(MessageKind.GET, src=0, dst=dst))
        engine.run()
        counter = transport.metrics.counter
        sent = counter("transport.sent").value
        assert sent == 100
        assert sent == (
            counter("transport.delivered").value
            + counter("transport.dropped.loss").value
            + counter("transport.dropped.dead").value
        )
        assert len(tracer.of_kind("send")) == sent
