"""Smoke tests: every example script runs clean as a subprocess."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 4


@pytest.mark.parametrize("script", [p.name for p in EXAMPLES])
def test_example_runs_clean(script):
    proc = run_example(script)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()  # says something
    assert "Traceback" not in proc.stderr


def test_quickstart_output_highlights():
    proc = run_example("quickstart.py")
    assert "invariants hold" in proc.stdout
    assert "churn" in proc.stdout


def test_sweep_shows_policy_ordering():
    proc = run_example("load_balancing_sweep.py")
    assert "random/lesslog replica ratio" in proc.stdout


def test_flash_crowd_reports_shedding():
    proc = run_example("flash_crowd.py")
    assert "replicas created" in proc.stdout
    assert "shed" in proc.stdout


def test_churn_resilience_shows_b_sweep():
    proc = run_example("churn_resilience.py")
    assert "copies/file" in proc.stdout
