"""Unit tests for the VID algebra (repro.core.vid) — Properties 1–4."""

import pytest

from repro.core import vid as V
from repro.core.bits import leading_ones, mask


class TestChildren:
    def test_root_children_m4(self):
        # Property 1: root 1111 has 4 children; largest subtree first.
        assert V.children_vids(0b1111, 4) == [0b1110, 0b1101, 0b1011, 0b0111]

    def test_paper_figure1_node_1110(self):
        # Figure 1 (recovered): 1110 has 3 children 0110, 1010, 1100,
        # ordered largest-subtree-first: 1100 (run 2), 1010 (1), 0110 (0).
        assert V.children_vids(0b1110, 4) == [0b1100, 0b1010, 0b0110]

    def test_leaf_has_no_children(self):
        assert V.children_vids(0b0111, 4) == []
        assert V.children_vids(0, 4) == []

    def test_child_count_equals_leading_ones(self):
        for v in range(32):
            assert V.child_count(v, 5) == leading_ones(v, 5)

    def test_children_order_is_descending_subtree_size(self):
        for m in (3, 4, 6):
            for v in range(1 << m):
                sizes = [V.subtree_size(c, m) for c in V.children_vids(v, m)]
                assert sizes == sorted(sizes, reverse=True)


class TestParent:
    def test_paper_example(self):
        # §2.1: parent of 0110 is 1110.
        assert V.parent_vid(0b0110, 4) == 0b1110

    def test_root_raises(self):
        with pytest.raises(ValueError):
            V.parent_vid(0b1111, 4)

    def test_parent_child_consistency(self):
        for m in (2, 4, 5):
            for v in range(1 << m):
                for c in V.children_vids(v, m):
                    assert V.parent_vid(c, m) == v

    def test_parent_is_strictly_larger(self):
        for v in range(15):
            assert V.parent_vid(v, 4) > v


class TestSubtreeSizes:
    def test_paper_figure1_offspring(self):
        # §2.1 (recovered): VIDs 1110 and 1101 have 7 and 3 offspring.
        assert V.offspring_count(0b1110, 4) == 7
        assert V.offspring_count(0b1101, 4) == 3

    def test_root_subtree_is_everything(self):
        assert V.subtree_size(0b1111, 4) == 16

    def test_sizes_sum_to_total(self):
        m = 5
        # Each depth-d layer partitions: root subtree = 1 + children subtrees.
        for v in range(1 << m):
            assert V.subtree_size(v, m) == 1 + sum(
                V.subtree_size(c, m) for c in V.children_vids(v, m)
            )

    def test_property3_monotonicity(self):
        # Property 3: numerically larger VID => at least as many offspring.
        for m in (3, 4, 6):
            prev = -1
            for v in range(1 << m):
                size = V.subtree_size(v, m)
                assert size >= 1
                if v > 0:
                    assert size >= prev or True  # monotone over runs, not raw
            # Exact statement: i > j implies offspring(i) >= offspring(j).
            for i in range(1 << m):
                for j in range(i):
                    assert V.offspring_count(i, m) >= V.offspring_count(j, m)


class TestSubtreeMembership:
    def test_closed_form_matches_enumeration(self):
        m = 4
        for v in range(16):
            members = set(V.iter_subtree(v, m))
            for w in range(16):
                assert V.in_subtree(w, v, m) == (w in members)

    def test_figure1_subtrees(self):
        # subtree(1110) = all VIDs with bit0 == 0.
        members = set(V.iter_subtree(0b1110, 4))
        assert members == {v for v in range(16) if v % 2 == 0}
        # subtree(1101) = VIDs ending in 01.
        members = set(V.iter_subtree(0b1101, 4))
        assert members == {0b1101, 0b0101, 0b1001, 0b0001}

    def test_subtree_size_matches_enumeration(self):
        for m in (3, 5):
            for v in range(1 << m):
                assert len(list(V.iter_subtree(v, m))) == V.subtree_size(v, m)

    def test_iter_subtree_root_first(self):
        for v in range(16):
            assert next(V.iter_subtree(v, 4)) == v

    def test_is_ancestor_strict(self):
        assert not V.is_ancestor(0b1010, 0b1010, 4)
        assert V.is_ancestor(0b1111, 0b0000, 4)
        assert V.is_ancestor(0b1110, 0b0100, 4)
        assert not V.is_ancestor(0b0100, 0b1110, 4)

    def test_ancestor_iff_on_parent_chain(self):
        m = 4
        for w in range(16):
            chain = set(V.ancestors(w, m))
            for a in range(16):
                assert V.is_ancestor(a, w, m) == (a in chain)


class TestPathsAndDepth:
    def test_depth_counts_zero_bits(self):
        assert V.depth(0b1111, 4) == 0
        assert V.depth(0b0000, 4) == 4
        assert V.depth(0b1010, 4) == 2

    def test_path_to_root_ends_at_root(self):
        for v in range(16):
            path = V.path_to_root(v, 4)
            assert path[0] == v
            assert path[-1] == 0b1111
            assert len(path) == V.depth(v, 4) + 1

    def test_path_strictly_increasing(self):
        for v in range(16):
            path = V.path_to_root(v, 4)
            assert all(a < b for a, b in zip(path, path[1:]))

    def test_lookup_bound_log_n(self):
        # §1: lookup time bounded by O(log N) — depth never exceeds m.
        for m in (3, 6, 10):
            assert max(V.depth(v, m) for v in (0, (1 << m) - 1, 5 % (1 << m))) <= m


class TestPidVidMapping:
    def test_root_maps_to_itself(self):
        for m in (3, 4, 7):
            for r in range(1 << m):
                assert V.vid_to_pid(mask(m), r, m) == r

    def test_paper_figure2_children_list(self):
        # Tree of P(4), m=4: children of the root are P(5), P(6), P(0), P(12).
        root_children = V.children_vids(0b1111, 4)
        pids = [V.vid_to_pid(c, 4, 4) for c in root_children]
        assert pids == [5, 6, 0, 12]

    def test_paper_routing_example(self):
        # P(8) targeting P(4): vid(8) = 0011 -> parent 1011 -> P(0)
        # -> parent 1111 -> P(4).
        vid8 = V.pid_to_vid(8, 4, 4)
        assert vid8 == 0b0011
        p1 = V.parent_vid(vid8, 4)
        assert V.vid_to_pid(p1, 4, 4) == 0
        p2 = V.parent_vid(p1, 4)
        assert V.vid_to_pid(p2, 4, 4) == 4

    def test_involution(self):
        for r in range(16):
            for pid in range(16):
                vid = V.pid_to_vid(pid, r, 4)
                assert V.vid_to_pid(vid, r, 4) == pid

    def test_bijection_across_roots(self):
        # N different complements map one virtual tree to N distinct
        # physical trees (§2.1): each root induces a permutation.
        for r in range(16):
            pids = {V.vid_to_pid(v, r, 4) for v in range(16)}
            assert pids == set(range(16))
