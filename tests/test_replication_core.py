"""Unit tests for replica-placement decisions (repro.core.replication)."""

import random

import pytest

from repro.core.liveness import AllLive, SetLiveness
from repro.core.replication import (
    choose_replica_target,
    first_uncopied,
    prune_cold_replicas,
)
from repro.core.tree import LookupTree


@pytest.fixture
def tree4():
    return LookupTree(4, 4)


class TestFirstUncopied:
    def test_picks_head_of_children_list(self, tree4):
        live = AllLive(4)
        # Children list of P(4): (5, 6, 0, 12).
        assert first_uncopied(tree4, 4, live, holders={4}) == 5
        assert first_uncopied(tree4, 4, live, holders={4, 5}) == 6
        assert first_uncopied(tree4, 4, live, holders={4, 5, 6}) == 0
        assert first_uncopied(tree4, 4, live, holders={4, 5, 6, 0}) == 12

    def test_exhausted_list_returns_none(self, tree4):
        live = AllLive(4)
        assert first_uncopied(tree4, 4, live, holders={4, 5, 6, 0, 12}) is None

    def test_advanced_list_with_dead_nodes(self, tree4):
        # Figure 3 list for P(4): (6, 7, 1, 12, 13, 8).
        liveness = SetLiveness.all_but(4, dead=[0, 5])
        assert first_uncopied(tree4, 4, liveness, holders={4}) == 6
        assert first_uncopied(tree4, 4, liveness, holders={4, 6, 7}) == 1


class TestChooseReplicaTarget:
    def test_interior_node_uses_own_children(self, tree4):
        live = AllLive(4)
        decision = choose_replica_target(tree4, 5, live, holders={4, 5})
        assert not decision.proportional
        assert decision.source == 5
        # Children list of P(5) (VID 1110): flip run bits of 1110.
        assert decision.target == tree4.children(5)[0]

    def test_root_is_proportional_but_deterministic_when_alone_on_top(
        self, tree4
    ):
        # With everything live, the root has no live node above it: the
        # proportional branch fires but own-subtree covers all nodes, so
        # the choice is forced to its own children list.
        live = AllLive(4)
        decision = choose_replica_target(tree4, 4, live, holders={4})
        assert decision.proportional
        assert decision.source == 4
        assert decision.target == 5

    def test_paper_top_node_example_mixes_lists(self, tree4):
        # §3: P(4), P(5) dead, P(6) overloaded (it holds the inserted
        # file).  The choice is proportional between P(6)'s children
        # list and the root's.
        liveness = SetLiveness.all_but(4, dead=[4, 5])
        sources = set()
        for seed in range(64):
            decision = choose_replica_target(
                tree4, 6, liveness, holders={6}, rng=random.Random(seed)
            )
            assert decision.proportional
            assert decision.target is not None
            sources.add(decision.source)
        assert sources == {6, 4}  # both lists get used across seeds

    def test_proportional_weights_roughly_respected(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[4, 5])
        # P(6) (VID 1101) has a live subtree of size 4 (VIDs 1101, 1001,
        # 0101, 0001 = PIDs 6, 2, 14, 10); rest = 14 - 4 = 10.
        own_picks = sum(
            choose_replica_target(
                tree4, 6, liveness, holders={6}, rng=random.Random(seed)
            ).source
            == 6
            for seed in range(400)
        )
        assert 0.15 < own_picks / 400 < 0.45  # expected ~4/14 ≈ 0.29

    def test_never_targets_self(self, tree4):
        live = AllLive(4)
        for k in range(16):
            decision = choose_replica_target(tree4, k, live, holders=set(range(16)) - {k})
            assert decision.target != k

    def test_falls_back_to_other_list_when_exhausted(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[4, 5])
        # Saturate P(6)'s own children list; the root list must be used.
        from repro.core.children import advanced_children_list

        own = set(advanced_children_list(tree4, 6, liveness))
        holders = own | {6}
        for seed in range(16):
            decision = choose_replica_target(
                tree4, 6, liveness, holders=holders, rng=random.Random(seed)
            )
            if decision.target is not None:
                assert decision.target not in holders

    def test_default_rng_is_deterministic(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[4, 5])
        a = choose_replica_target(tree4, 6, liveness, holders={6})
        b = choose_replica_target(tree4, 6, liveness, holders={6})
        assert a == b


class TestPruneColdReplicas:
    def test_prunes_below_threshold(self):
        rates = {1: 50.0, 2: 5.0, 3: 0.0}
        cold = prune_cold_replicas([1, 2, 3], rates.__getitem__, threshold=10.0)
        assert sorted(cold) == [2, 3]

    def test_protected_never_pruned(self):
        rates = {1: 0.0, 2: 0.0}
        cold = prune_cold_replicas([1, 2], rates.__getitem__, 10.0, protected=[1])
        assert cold == [2]

    def test_zero_threshold_prunes_nothing(self):
        rates = {1: 0.0}
        assert prune_cold_replicas([1], rates.__getitem__, 0.0) == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            prune_cold_replicas([], lambda _: 0.0, -1.0)
