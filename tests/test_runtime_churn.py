"""Tests for mid-burst churn against the live overload plane
(``repro.runtime.churn`` + the liveness-aware redirect machinery).

The deterministic pieces — event/injector validation and schedule
seeding — run in tier-1.  Everything that boots a real cluster, kills
nodes mid-flood, and audits the ledger afterwards carries the
``runtime`` marker and runs in CI's churn-overload smoke job.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.runtime import (
    ChurnEvent,
    ChurnInjector,
    LiveCluster,
    LoadGenerator,
    RuntimeClient,
    RuntimeConfig,
    WorkloadShape,
    diff_states,
    replay_oplog,
)

# ---------------------------------------------------------------------------
# events and schedules (deterministic, tier-1)
# ---------------------------------------------------------------------------


class TestChurnEvent:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown churn action"):
            ChurnEvent(at=0.1, action="explode")

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            ChurnEvent(at=-0.1, action="kill")

    def test_valid_event_carries_optional_pid(self):
        event = ChurnEvent(at=0.5, action="crash", pid=3)
        assert event.at == 0.5 and event.action == "crash" and event.pid == 3
        assert ChurnEvent(at=0.0, action="join").pid is None


class TestChurnSchedule:
    def test_min_live_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="min_live"):
            ChurnInjector(object(), [], min_live=0)

    def test_window_fractions_validated(self):
        with pytest.raises(ConfigurationError, match="start_frac"):
            ChurnInjector.scheduled(object(), 1.0, start_frac=0.9, end_frac=0.1)

    def test_events_sorted_by_time(self):
        events = [
            ChurnEvent(at=0.8, action="kill"),
            ChurnEvent(at=0.2, action="join"),
            ChurnEvent(at=0.5, action="crash"),
        ]
        injector = ChurnInjector(object(), events)
        assert [e.at for e in injector.events] == [0.2, 0.5, 0.8]

    def test_scheduled_lands_inside_the_burst_window(self):
        injector = ChurnInjector.scheduled(
            object(), 2.0, kills=2, crashes=1, joins=1, seed=9
        )
        assert len(injector.events) == 4
        assert all(0.5 <= e.at <= 1.5 for e in injector.events)
        actions = sorted(e.action for e in injector.events)
        assert actions == ["crash", "join", "kill", "kill"]
        # Scheduled victims defer to fire time: never pinned up front.
        assert all(e.pid is None for e in injector.events)

    def test_schedule_is_seed_deterministic(self):
        def times(seed):
            inj = ChurnInjector.scheduled(object(), 1.0, kills=3, seed=seed)
            return [e.at for e in inj.events]

        assert times(7) == times(7)
        assert times(7) != times(8)

    def test_finalize_requires_start(self):
        injector = ChurnInjector.scheduled(object(), 1.0)
        with pytest.raises(ConfigurationError, match="never started"):
            asyncio.run(injector.finalize())


# ---------------------------------------------------------------------------
# live cluster helpers
# ---------------------------------------------------------------------------


def _churn_config(**kwargs) -> RuntimeConfig:
    base = dict(m=3, b=1, seed=7, inbox_limit=2, service_time=0.005)
    base.update(kwargs)
    return RuntimeConfig(**base)


async def _boot_with_hot_file(config, name="hot-0.dat", replicate=True):
    """Start a cluster, insert ``name``, optionally pre-seed a replica
    (via the recorded admin overload trigger) so the file has at least
    two holders.  Returns (cluster, home)."""
    cluster = await LiveCluster.start(config)
    boot = await RuntimeClient(cluster, min(cluster.nodes)).connect()
    await boot.insert(name, f"payload of {name}")
    await boot.close()
    await cluster.drain()
    home = min(cluster.holders(name))
    if replicate:
        await cluster.trigger_overload(home, name, config.seed)
        await cluster.drain()
    return cluster, home


# ---------------------------------------------------------------------------
# satellite: the redirect hint consults the shedder's status word
# ---------------------------------------------------------------------------


@pytest.mark.runtime
def test_redirect_hint_never_names_a_word_dead_replica():
    """Regression for the stale-hint fix: once the shedder's own word
    has processed a replica holder's death, its OVERLOAD hints must
    stop naming the corpse (pre-fix they kept doing so until the
    holder view itself caught up)."""

    async def run():
        cluster, home = await _boot_with_hot_file(_churn_config())
        try:
            name = "hot-0.dat"
            holders = sorted(cluster.holders(name))
            assert len(holders) >= 2, holders
            shedder = cluster.nodes[home]
            others = [p for p in holders if p != home]
            hint = shedder._redirect_hint(name)
            assert hint in others  # a live alternative while all is well
            for other in others:
                shedder.word.register_dead(other)
            assert shedder._redirect_hint(name) == -1
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_redirect_hint_falls_back_on_cached_holders():
    """When the fresh holder view goes empty (every alternative died
    silently), the hint falls back on the last holder set the node
    observed — stale knowledge, exactly what a real peer would have.
    The word filter still applies on top of the cache."""

    async def run():
        cluster, home = await _boot_with_hot_file(_churn_config())
        try:
            name = "hot-0.dat"
            shedder = cluster.nodes[home]
            others = [p for p in sorted(cluster.holders(name)) if p != home]
            assert shedder._redirect_hint(name) in others  # primes the cache
            for other in others:
                await cluster.crash(other, announce=False)
            assert cluster.holders(name) == {home}
            # Nobody told the shedder: the cache-backed hint still names
            # a corpse — the client-side reroute is what absorbs it.
            assert all(shedder.word.is_live(p) for p in others)
            assert shedder._redirect_hint(name) in others
            # Once its own FINDLIVENODE marks the deaths, the hint dries up.
            for other in others:
                shedder.word.register_dead(other)
            assert shedder._redirect_hint(name) == -1
        finally:
            await cluster.shutdown()

    asyncio.run(run())


# ---------------------------------------------------------------------------
# satellite: redirect chains crossing a silent crash terminate
# ---------------------------------------------------------------------------


@pytest.mark.runtime
def test_redirect_chain_over_silent_crash_terminates_in_budget():
    """Seed-stable: a flood whose redirect chains cross a mid-burst
    ``crash(announce=False)`` must terminate within the redirect
    budget — every request lands in exactly one terminal, none of them
    a stale shed, and nothing hangs past the deadline."""

    async def run():
        config = _churn_config(inbox_limit=1, service_time=0.008)
        cluster, home = await _boot_with_hot_file(config)
        try:
            name = "hot-0.dat"
            victim = next(
                p for p in sorted(cluster.holders(name)) if p != home
            )
            duration = 0.4
            injector = ChurnInjector(
                cluster,
                [ChurnEvent(at=0.3 * duration, action="kill", pid=victim)],
                seed=config.seed,
                min_live=3,
            )
            gen = LoadGenerator(
                cluster, [name], WorkloadShape(kind="zipf", s=2.0),
                seed=config.seed, timeout=2.0, redirects=3,
            )
            injector.start()
            report = await gen.run_open_loop(rps=500.0, duration=duration)
            await gen.close()
            applied = await injector.finalize()
            assert any(e["action"] == "kill" for e in applied)
            assert report.requests > 50
            assert report.conserved, report.as_dict()
            assert report.stale_sheds == 0
            # Redirect chains consume bounded budget: every redirected
            # retry traces back to an OVERLOAD reply.
            assert report.redirected <= report.overloads
        finally:
            await cluster.shutdown()

    # The whole point: the chain terminates.  A hang fails loudly here
    # instead of stalling the suite.
    asyncio.run(asyncio.wait_for(run(), timeout=30.0))


# ---------------------------------------------------------------------------
# the injector against a live flood
# ---------------------------------------------------------------------------


@pytest.mark.runtime
def test_mid_burst_churn_conserves_and_conforms():
    """The tentpole end to end: silent kills land mid-flood, autopsies
    close the oplog halves post-burst, the client ledger conserves
    (churn losses included), and the survivors still replay to the
    oracle's exact state."""

    async def run():
        config = _churn_config()
        cluster, _ = await _boot_with_hot_file(config)
        try:
            names = ["hot-0.dat"]
            duration = 0.5
            injector = ChurnInjector.scheduled(
                cluster, duration, kills=2, seed=config.seed, min_live=3
            )
            gen = LoadGenerator(
                cluster, names, WorkloadShape(kind="zipf", s=2.0),
                seed=config.seed, timeout=2.0,
            )
            injector.start()
            report = await gen.run_open_loop(rps=400.0, duration=duration)
            await gen.close()
            applied = await injector.finalize()
            kills = [e for e in applied if e["action"] == "kill"]
            autopsies = [e for e in applied if e["action"] == "autopsy"]
            killed = {e["pid"] for e in kills if e["pid"] is not None}
            # Every silent kill that was not resurrected got its autopsy.
            assert killed == {e["pid"] for e in autopsies}
            assert not cluster._silent_deaths
            assert report.requests > 50
            assert report.conserved, report.as_dict()
            # The oplog closed both halves for every victim.
            kinds = [(r.kind, r.pid) for r in cluster.oplog]
            for pid in killed:
                assert ("kill", pid) in kinds and ("recover", pid) in kinds
            await cluster.quiesce()
            system = replay_oplog(cluster.oplog, config, cluster.initial_live)
            system.check_invariants()
            conformance = diff_states(cluster, system)
            assert conformance.ok, conformance.render()
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_min_live_floor_skips_the_kill():
    """Events that would breach ``min_live`` are skipped and reported
    with ``pid=None`` — the injector never grinds a cluster to dust."""

    async def run():
        cluster = await LiveCluster.start(RuntimeConfig(m=2, b=0, seed=1))
        try:
            live = len(cluster.nodes)
            injector = ChurnInjector.scheduled(
                cluster, 0.05, kills=1, seed=3, min_live=live
            )
            injector.start()
            applied = await injector.finalize()
            assert applied == [{"at": injector.events[0].at,
                                "action": "kill", "pid": None}]
            assert len(cluster.nodes) == live
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_join_on_a_silent_corpse_runs_the_autopsy_first():
    """No resurrection before the coroner files: rejoining a silently
    dead PID must first announce the crash (recovery + the closing
    ``recover`` record), then register the arrival."""

    async def run():
        config = _churn_config()
        cluster, home = await _boot_with_hot_file(config)
        try:
            victim = next(
                p for p in sorted(cluster.holders("hot-0.dat")) if p != home
            )
            await cluster.crash(victim, announce=False)
            assert victim in cluster._silent_deaths
            await cluster.join(victim)
            assert victim not in cluster._silent_deaths
            kinds = [(r.kind, r.pid) for r in cluster.oplog]
            kill_at = kinds.index(("kill", victim))
            recover_at = kinds.index(("recover", victim))
            arrive_at = kinds.index(("arrive", victim))
            assert kill_at < recover_at < arrive_at
            await cluster.quiesce()
            system = replay_oplog(cluster.oplog, config, cluster.initial_live)
            assert diff_states(cluster, system).ok
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_generator_redials_a_rejoined_entry():
    """Regression: a cached client whose entry died silently is a husk;
    when the entry *rejoins*, the generator must redial instead of
    writing into the dead transport.  Pre-fix, the reused husk's sends
    were counted against the live-again entry but never arrived, so
    ``_inflight_to`` stuck above zero and every later ``drain()``
    (e.g. a mid-burst join's REGISTER_LIVE broadcast) hit its timeout."""

    async def run():
        config = _churn_config()
        cluster, _ = await _boot_with_hot_file(config, replicate=False)
        try:
            name = "hot-0.dat"
            entry = max(p for p in cluster.nodes if p not in
                        cluster.holders(name))
            gen = LoadGenerator(cluster, [name], seed=3, timeout=2.0)
            client = await gen._client(entry)
            assert (await client.get(name)).ok
            await cluster.crash(entry, announce=False)
            await asyncio.sleep(0)  # let the EOF reach the read loop
            assert client.connection_lost
            await cluster.join(entry)
            fresh = await gen._client(entry)
            assert fresh is not client and not fresh.connection_lost
            assert (await fresh.get(name)).ok
            await gen.close()
            # The ledger balanced: the drain terminates immediately.
            await cluster.drain()
        finally:
            await cluster.shutdown()

    asyncio.run(asyncio.wait_for(run(), timeout=30.0))


# ---------------------------------------------------------------------------
# inherited load: §5.3 recovery hands the victim's demand to the heir
# ---------------------------------------------------------------------------


@pytest.mark.runtime
def test_crashed_holders_load_is_attributed_to_the_heir():
    """The overload plane must not go blind for a window after a crash:
    the demand the victim was serving seeds its heir's load monitor, so
    the SLO-aware replication trigger sees the pressure about to shift
    there."""

    async def run():
        config = _churn_config(window=1.0)
        cluster, home = await _boot_with_hot_file(config)
        try:
            name = "hot-0.dat"
            # Drive demand at the home specifically so only its monitor
            # holds samples.
            client = await RuntimeClient(cluster, home).connect()
            for _ in range(30):
                outcome = await client.get(name)
                assert outcome.ok
            await client.close()
            loop = asyncio.get_running_loop()
            assert cluster.nodes[home].monitor.file_rate(name, loop.time()) > 0
            survivors = [
                p for p in sorted(cluster.holders(name)) if p != home
            ]
            for pid in survivors:
                assert cluster.nodes[pid].monitor.file_rate(
                    name, loop.time()
                ) == 0.0
            await cluster.crash(home)
            now = loop.time()
            heirs = [
                p for p in sorted(cluster.holders(name))
                if cluster.nodes[p].monitor.file_rate(name, now) > 0
            ]
            # Someone alive now carries the inherited rate — without
            # ever having served a single request for the file.
            assert heirs, "the crashed holder's load evaporated"
        finally:
            await cluster.shutdown()

    asyncio.run(run())


# ---------------------------------------------------------------------------
# satellite: lifecycle conservation under churn, property-tested live
# ---------------------------------------------------------------------------


@pytest.mark.runtime
class TestChurnedLifecycleProperty:
    """The live dual of the DES lifecycle property: under any seeded
    churn schedule, every fired request lands in exactly one terminal —
    completed, fault, error, timeout, shed, or churn-lost."""

    @given(
        seed=st.integers(min_value=0, max_value=31),
        kills=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=4, deadline=None)
    def test_terminals_partition_the_fired_requests(self, seed, kills):
        async def run():
            config = _churn_config(seed=seed)
            cluster, _ = await _boot_with_hot_file(config)
            try:
                duration = 0.25
                injector = ChurnInjector.scheduled(
                    cluster, duration, kills=kills, seed=seed, min_live=3
                )
                gen = LoadGenerator(
                    cluster, ["hot-0.dat"], WorkloadShape(kind="zipf", s=2.0),
                    seed=seed, timeout=2.0,
                )
                injector.start()
                report = await gen.run_open_loop(rps=300.0, duration=duration)
                await gen.close()
                await injector.finalize()
                return report
            finally:
                await cluster.shutdown()

        report = asyncio.run(run())
        assert report.requests > 0
        total = (
            report.completed + report.faults + report.errors
            + report.timeouts + report.shed + report.churn_lost
        )
        assert total == report.requests, report.as_dict()
        assert report.conserved
        assert report.stale_sheds == 0
