"""Tests for DES run schedules and counter-based replica decay."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.liveness import SetLiveness
from repro.engine.des_driver import DesExperiment
from repro.experiments.extensions import gossip_staleness_study, replica_decay_study
from repro.workloads import UniformDemand


def make_exp(m=6, target=19, total_rate=1200.0, capacity=100.0, **kw):
    liveness = SetLiveness(m, range(1 << m))
    rates = UniformDemand().rates(total_rate, liveness)
    return DesExperiment(
        m=m, target=target, entry_rates=rates, capacity=capacity, **kw
    )


class TestRunSchedule:
    def test_phases_validate(self):
        exp = make_exp()
        with pytest.raises(ConfigurationError):
            exp.run_schedule([])
        exp2 = make_exp()
        with pytest.raises(ConfigurationError):
            exp2.run_schedule([(0.0, 1.0)])
        exp3 = make_exp()
        with pytest.raises(ConfigurationError):
            exp3.run_schedule([(1.0, -0.5)])

    def test_series_is_sampled(self):
        exp = make_exp(total_rate=200.0, capacity=10_000.0)
        _, series = exp.run_schedule([(4.0, 1.0)], sample_replicas_every=0.5)
        assert len(series) >= 8
        times = [t for t, _ in series]
        assert times == sorted(times)

    def test_two_phases_carry_different_rates(self):
        exp = make_exp(total_rate=400.0, capacity=10_000.0)
        result, _ = exp.run_schedule([(5.0, 1.0), (5.0, 0.1)])
        # ~400*5 + 40*5 = ~2200 requests expected.
        assert result.requests_sent == pytest.approx(2200, rel=0.2)


class TestReplicaDecay:
    def test_flash_crowd_then_decay(self):
        exp = make_exp(removal_threshold=5.0, seed=1)
        result, series = exp.run_schedule([(10.0, 1.0), (15.0, 0.05)])
        counts = [c for _, c in series]
        peak = max(counts)
        assert peak >= 10                      # the crowd forced replication
        assert counts[-1] <= peak // 3         # the quiet phase drained it
        assert exp.metrics.counter("des.replicas_removed").value > 0

    def test_no_threshold_no_decay(self):
        exp = make_exp(removal_threshold=0.0, seed=1)
        _, series = exp.run_schedule([(10.0, 1.0), (10.0, 0.05)])
        counts = [c for _, c in series]
        assert counts[-1] == max(counts)  # replicas stay forever
        assert exp.metrics.counter("des.replicas_removed").value == 0

    def test_inserted_copy_never_removed(self):
        exp = make_exp(removal_threshold=50.0, seed=2)
        exp.run_schedule([(6.0, 1.0), (8.0, 0.01)])
        from repro.core.routing import storage_node

        home = storage_node(exp.tree, exp.membership)
        assert exp.file in exp.nodes[home].store

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            make_exp(removal_threshold=-1.0)


class TestExtensionStudies:
    def test_decay_study_shape(self):
        result = replica_decay_study(thresholds=(0.0, 5.0))
        assert result.value("removed", 0.0) == 0
        assert result.value("removed", 5.0) > 0
        assert result.value("final replicas", 5.0) < result.value(
            "final replicas", 0.0
        )

    def test_gossip_study_monotone_in_delay(self):
        result = gossip_staleness_study(delays=(0.2, 2.0))
        assert result.value("requests lost", 0.2) <= result.value(
            "requests lost", 2.0
        )
