"""Unit tests for the node layer: storage, load monitor, membership."""

import pytest

from repro.core.errors import MembershipError, StorageError
from repro.node import FileOrigin, FileStore, LoadMonitor, StatusWord, WindowedRate


class TestFileStore:
    def test_store_and_get(self):
        store = FileStore()
        store.store("a", b"x", 1, FileOrigin.INSERTED)
        assert store.has("a") and "a" in store
        assert store.get("a").payload == b"x"

    def test_get_missing_raises(self):
        with pytest.raises(StorageError):
            FileStore().get("nope")

    def test_access_counting(self):
        store = FileStore()
        store.store("a", None, 1, FileOrigin.REPLICATED)
        store.get("a")
        store.get("a", count_access=False)
        assert store.get("a", count_access=False).access_count == 1

    def test_origin_upgrade_inserted_wins(self):
        store = FileStore()
        store.store("a", b"1", 1, FileOrigin.REPLICATED)
        store.store("a", b"2", 2, FileOrigin.INSERTED)
        entry = store.get("a", count_access=False)
        assert entry.origin is FileOrigin.INSERTED
        assert entry.payload == b"2"
        # Replica origin does not downgrade an inserted copy.
        store.store("a", b"3", 3, FileOrigin.REPLICATED)
        assert store.get("a", count_access=False).origin is FileOrigin.INSERTED

    def test_version_downgrade_rejected(self):
        store = FileStore()
        store.store("a", b"2", 2, FileOrigin.INSERTED)
        with pytest.raises(StorageError):
            store.store("a", b"1", 1, FileOrigin.REPLICATED)

    def test_update_semantics(self):
        store = FileStore()
        assert not store.update("a", b"x", 1)  # not present -> discard
        store.store("a", b"v1", 1, FileOrigin.REPLICATED)
        assert store.update("a", b"v2", 2)
        assert store.get("a", count_access=False).payload == b"v2"
        # Stale update is idempotently ignored.
        assert store.update("a", b"old", 1)
        assert store.get("a", count_access=False).payload == b"v2"

    def test_remove_and_discard(self):
        store = FileStore()
        store.store("a", None, 1, FileOrigin.REPLICATED)
        store.remove("a")
        assert "a" not in store
        with pytest.raises(StorageError):
            store.remove("a")
        store.discard("a")  # no-op

    def test_origin_partition(self):
        store = FileStore()
        store.store("i1", None, 1, FileOrigin.INSERTED)
        store.store("r1", None, 1, FileOrigin.REPLICATED)
        store.store("r2", None, 1, FileOrigin.REPLICATED)
        assert [f.name for f in store.inserted_files()] == ["i1"]
        assert sorted(f.name for f in store.replicated_files()) == ["r1", "r2"]
        assert len(store) == 3
        assert store.names() == ["i1", "r1", "r2"]


class TestWindowedRate:
    def test_rate_over_window(self):
        wr = WindowedRate(window=2.0)
        for t in (0.0, 0.5, 1.0, 1.5):
            wr.record(t)
        assert wr.rate(1.5) == pytest.approx(4 / 2.0)

    def test_old_events_expire(self):
        wr = WindowedRate(window=1.0)
        wr.record(0.0)
        wr.record(0.5)
        assert wr.count(0.9) == 2
        assert wr.count(1.2) == 1
        assert wr.count(3.0) == 0
        assert wr.total == 2

    def test_out_of_order_rejected(self):
        wr = WindowedRate()
        wr.record(1.0)
        with pytest.raises(ValueError):
            wr.record(0.5)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedRate(window=0.0)


class TestLoadMonitor:
    def test_overload_detection(self):
        mon = LoadMonitor(capacity=5.0, window=1.0)
        for i in range(6):
            mon.record_served("f", -1, i * 0.1)
        assert mon.is_overloaded(0.5)
        assert mon.total_rate(0.5) == pytest.approx(6.0)

    def test_hottest_file(self):
        mon = LoadMonitor(capacity=100.0)
        for i in range(5):
            mon.record_served("hot", -1, i * 0.01)
        mon.record_served("cold", -1, 0.05)
        assert mon.hottest_file(0.05) == "hot"

    def test_hottest_of_empty_is_none(self):
        assert LoadMonitor().hottest_file(0.0) is None

    def test_source_rates_breakdown(self):
        mon = LoadMonitor(capacity=10.0, window=1.0)
        for t, src in ((0.0, 3), (0.1, 3), (0.2, 7), (0.3, -1)):
            mon.record_served("f", src, t)
        rates = mon.source_rates("f", 0.3)
        assert rates == {3: pytest.approx(2.0), 7: pytest.approx(1.0), -1: pytest.approx(1.0)}
        assert mon.source_rates("ghost", 0.3) == {}

    def test_file_rate(self):
        mon = LoadMonitor(window=1.0)
        mon.record_served("f", -1, 0.0)
        assert mon.file_rate("f", 0.0) == pytest.approx(1.0)
        assert mon.file_rate("other", 0.0) == 0.0

    def test_reset(self):
        mon = LoadMonitor()
        mon.record_served("f", -1, 0.0)
        mon.reset()
        assert mon.total_rate(0.0) == 0.0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            LoadMonitor(capacity=0.0)


class TestStatusWord:
    def test_full(self):
        word = StatusWord.full(4)
        assert word.live_count() == 16
        assert list(word.live_pids()) == list(range(16))

    def test_register_transitions(self):
        word = StatusWord(4, live=[1, 2])
        word.register_live(5)
        word.register_dead(1)
        assert sorted(word.live_pids()) == [2, 5]
        assert 5 in word and 1 not in word

    def test_idempotent_registration(self):
        word = StatusWord(4, live=[1])
        word.register_live(1)
        word.register_dead(9)
        assert word.live_count() == 1

    def test_merge_adopts_other(self):
        a = StatusWord(4, live=[1])
        b = StatusWord(4, live=[2, 3])
        a.merge(b)
        assert a == b and a is not b

    def test_merge_width_mismatch(self):
        with pytest.raises(MembershipError):
            StatusWord(4).merge(StatusWord(5))

    def test_int_roundtrip(self):
        word = StatusWord(4, live=[0, 3, 15])
        again = StatusWord.from_int(4, word.as_int())
        assert again == word

    def test_from_int_range_check(self):
        with pytest.raises(MembershipError):
            StatusWord.from_int(2, 1 << 20)

    def test_copy_is_independent(self):
        word = StatusWord(4, live=[1])
        clone = word.copy()
        clone.register_live(2)
        assert word.live_count() == 1

    def test_hash_and_eq(self):
        assert hash(StatusWord(4, live=[1])) == hash(StatusWord(4, live=[1]))
        assert StatusWord(4, live=[1]) != StatusWord(4, live=[2])

    def test_satisfies_liveness_protocol(self):
        from repro.core.liveness import LivenessView

        assert isinstance(StatusWord(4), LivenessView)
