"""Unit tests for rng, metrics, and trace support (repro.sim)."""

import math

import pytest

from repro.sim import MetricsRegistry, RngHub, TraceRecord, Tracer, derive_seed
from repro.sim.metrics import Counter, Gauge, Histogram, TimeSeries


class TestRngHub:
    def test_streams_are_deterministic(self):
        a = RngHub(42).stream("workload")
        b = RngHub(42).stream("workload")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent_by_name(self):
        hub = RngHub(42)
        xs = [hub.stream("x").random() for _ in range(5)]
        ys = [hub.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_same_stream_object_reused(self):
        hub = RngHub(1)
        assert hub.stream("a") is hub.stream("a")

    def test_fork_changes_streams(self):
        hub = RngHub(7)
        child = hub.fork("replica")
        assert hub.stream("s").random() != child.stream("s").random()

    def test_derive_seed_stable(self):
        assert derive_seed(3, "x") == derive_seed(3, "x")
        assert derive_seed(3, "x") != derive_seed(4, "x")


class TestCounterGauge:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge(self):
        g = Gauge()
        g.set(3.0)
        g.add(-1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_summary(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["mean"] == pytest.approx(50.5)
        assert s["p50"] == pytest.approx(50.5)
        assert s["max"] == 100.0

    def test_empty_summary_is_nan(self):
        assert math.isnan(Histogram().mean())

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Histogram().observe(float("nan"))

    def test_quantile_bounds(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestTimeSeries:
    def test_record_and_last(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(2.0, 5.0)
        assert ts.last() == 5.0
        assert len(ts) == 2

    def test_rejects_out_of_order(self):
        ts = TimeSeries()
        ts.record(2.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(1.0, 1.0)

    def test_value_at_step_function(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(10.0, 2.0)
        assert ts.value_at(5.0) == 1.0
        assert ts.value_at(10.0) == 2.0
        with pytest.raises(ValueError):
            ts.value_at(-1.0)

    def test_empty_last_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().last()


class TestMetricsRegistry:
    def test_autocreate_and_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc(3)
        reg.gauge("load").set(0.5)
        reg.histogram("hops").observe(2.0)
        snap = reg.snapshot()
        assert snap["counter:requests"] == 3.0
        assert snap["gauge:load"] == 0.5
        assert snap["histogram:hops:mean"] == 2.0

    def test_names(self):
        reg = MetricsRegistry()
        reg.series("replicas").record(0.0, 0.0)
        assert reg.names()["series"] == ["replicas"]


class TestTracer:
    def test_emit_and_filter(self):
        t = Tracer()
        t.emit(0.0, "send", src=1, dst=2)
        t.emit(1.0, "recv", dst=2)
        assert len(t) == 2
        assert [r.kind for r in t.of_kind("send")] == ["send"]
        assert t.kinds() == {"send": 1, "recv": 1}

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.emit(0.0, "send")
        assert len(t) == 0

    def test_kind_filter(self):
        t = Tracer(kinds={"replicate"})
        t.emit(0.0, "send")
        t.emit(1.0, "replicate", target=5)
        assert [r.kind for r in t] == ["replicate"]

    def test_replay(self):
        t = Tracer()
        t.emit(0.0, "a", n=1)
        t.emit(1.0, "b", n=2)
        seen = []
        count = t.replay(lambda r: seen.append(r.data["n"]))
        assert count == 2 and seen == [1, 2]
        seen.clear()
        t.replay(lambda r: seen.append(r.kind), kind="b")
        assert seen == ["b"]

    def test_jsonl_roundtrip(self):
        t = Tracer()
        t.emit(0.5, "send", src=1, payload="x")
        text = t.to_jsonl()
        back = Tracer.from_jsonl(text)
        assert back.records == t.records

    def test_clear(self):
        t = Tracer()
        t.emit(0.0, "a")
        t.clear()
        assert len(t) == 0

    def test_record_json_roundtrip(self):
        r = TraceRecord(1.0, "k", {"a": [1, 2]})
        assert TraceRecord.from_json(r.to_json()) == r

    def test_record_missing_data_tolerated(self):
        r = TraceRecord.from_json('{"time": 2.5, "kind": "join"}')
        assert (r.time, r.kind, r.data) == (2.5, "join", {})
        r = TraceRecord.from_json('{"time": 0, "kind": "k", "data": null}')
        assert r.data == {}

    @pytest.mark.parametrize("bad", ["NaN", "Infinity", "-Infinity"])
    def test_record_nonfinite_time_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            TraceRecord.from_json('{"time": %s, "kind": "k", "data": {}}' % bad)
