"""Direct tests for update-broadcast reachability (reachable_holders)."""

import pytest

from repro.cluster import LessLogSystem
from repro.core.errors import FileNotFoundInSystemError
from repro.node.storage import FileOrigin


class TestReachableHolders:
    def test_home_always_reachable(self):
        sys_ = LessLogSystem.build(m=4)
        name = sys_.psi.find_name_for_target(4)
        sys_.insert(name)
        assert sys_.reachable_holders(name) == [4]

    def test_chain_of_replicas_reachable(self):
        sys_ = LessLogSystem.build(m=4)
        name = sys_.psi.find_name_for_target(4)
        sys_.insert(name)
        t1 = sys_.replicate(name, overloaded=4)
        t2 = sys_.replicate(name, overloaded=t1)
        reachable = set(sys_.reachable_holders(name))
        assert reachable == {4, t1, t2}

    def test_manufactured_orphan_not_reachable(self):
        sys_ = LessLogSystem.build(m=4)
        name = sys_.psi.find_name_for_target(4)
        sys_.insert(name)
        tree = sys_.tree(4)
        grandchild = tree.children(tree.children(4)[0])[0]
        sys_.stores[grandchild].store(name, None, 1, FileOrigin.REPLICATED)
        assert grandchild not in sys_.reachable_holders(name)

    def test_unknown_file_raises(self):
        sys_ = LessLogSystem.build(m=4)
        with pytest.raises(FileNotFoundInSystemError):
            sys_.reachable_holders("ghost")

    def test_reachability_covers_all_subtrees(self):
        sys_ = LessLogSystem.build(m=4, b=2)
        name = sys_.psi.find_name_for_target(4)
        homes = sys_.insert(name).homes
        assert set(sys_.reachable_holders(name)) == set(homes)

    def test_dead_root_fringe_reachable(self):
        sys_ = LessLogSystem.build(m=4, dead={4, 5})
        name = sys_.psi.find_name_for_target(4)
        sys_.insert(name)  # home is P(6)
        sys_.replicate(name, overloaded=6)
        reachable = set(sys_.reachable_holders(name))
        assert reachable == set(sys_.holders_of(name))


class TestReportFailurePath:
    def test_failed_claim_reported_as_fail(self, monkeypatch):
        from repro.experiments import report as report_mod

        monkeypatch.setitem(
            report_mod.CLAIMS,
            "ext-lookup",
            report_mod.ClaimCheck("always false", lambda r: False),
        )
        text = report_mod.generate_report(["ext-lookup"], fast=True, charts=False)
        assert "**FAIL**" in text
        assert "0 claims reproduced, 1 failed" in text
