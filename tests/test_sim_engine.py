"""Unit tests for the discrete-event kernel (repro.sim)."""

import pytest

from repro.core.errors import SimulationError
from repro.sim import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        log = []
        eng.schedule(3.0, lambda: log.append("c"))
        eng.schedule(1.0, lambda: log.append("a"))
        eng.schedule(2.0, lambda: log.append("b"))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        eng = Engine()
        log = []
        for i in range(5):
            eng.schedule(1.0, lambda i=i: log.append(i))
        eng.run()
        assert log == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        eng = Engine()
        log = []
        eng.schedule(1.0, lambda: log.append("low"), priority=5)
        eng.schedule(1.0, lambda: log.append("high"), priority=-5)
        eng.run()
        assert log == ["high", "low"]

    def test_clock_advances(self):
        eng = Engine()
        times = []
        eng.schedule(2.5, lambda: times.append(eng.now))
        eng.schedule(7.0, lambda: times.append(eng.now))
        eng.run()
        assert times == [2.5, 7.0]
        assert eng.now == 7.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        eng = Engine()
        eng.schedule(5.0, lambda: eng.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            eng.run()

    def test_events_can_schedule_events(self):
        eng = Engine()
        log = []

        def first():
            log.append(("first", eng.now))
            eng.schedule(1.0, lambda: log.append(("second", eng.now)))

        eng.schedule(1.0, first)
        eng.run()
        assert log == [("first", 1.0), ("second", 2.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        log = []
        handle = eng.schedule(1.0, lambda: log.append("x"))
        assert handle.cancel()
        eng.run()
        assert log == []

    def test_double_cancel_returns_false(self):
        handle = Engine().schedule(1.0, lambda: None)
        assert handle.cancel()
        assert not handle.cancel()

    def test_pending_excludes_cancelled(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        h.cancel()
        assert eng.pending == 1

    def test_pending_counter_tracks_lifecycle(self):
        eng = Engine()
        handles = [eng.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert eng.pending == 5
        handles[0].cancel()
        handles[0].cancel()  # double cancel must not double-decrement
        assert eng.pending == 4
        eng.run_until(2.0)  # executes the t=2 event (t=1 was cancelled)
        assert eng.pending == 3
        eng.run()
        assert eng.pending == 0

    def test_cancel_after_execution_is_a_noop(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        eng.run()
        assert not h.cancel()
        assert eng.pending == 0

    def test_cancel_after_clear_is_a_noop(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        eng.clear()
        assert eng.pending == 0
        assert not h.cancel()
        assert eng.pending == 0


class TestRunUntil:
    def test_runs_inclusive_boundary(self):
        eng = Engine()
        log = []
        eng.schedule(1.0, lambda: log.append(1))
        eng.schedule(2.0, lambda: log.append(2))
        eng.schedule(3.0, lambda: log.append(3))
        eng.run_until(2.0)
        assert log == [1, 2]
        assert eng.now == 2.0
        eng.run_until(10.0)
        assert log == [1, 2, 3]
        assert eng.now == 10.0

    def test_clock_lands_on_target_even_when_idle(self):
        eng = Engine()
        eng.run_until(5.0)
        assert eng.now == 5.0

    def test_backwards_run_until_rejected(self):
        eng = Engine()
        eng.run_until(5.0)
        with pytest.raises(SimulationError):
            eng.run_until(1.0)


class TestRun:
    def test_returns_executed_count(self):
        eng = Engine()
        for i in range(4):
            eng.schedule(float(i), lambda: None)
        assert eng.run() == 4
        assert eng.events_executed == 4

    def test_max_events_guard(self):
        eng = Engine()

        def rearm():
            eng.schedule(1.0, rearm)

        eng.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            eng.run(max_events=100)

    def test_clear_drops_pending(self):
        eng = Engine()
        eng.schedule(1.0, lambda: None)
        eng.clear()
        assert eng.run() == 0


class TestProcesses:
    def test_generator_process_yields_delays(self):
        eng = Engine()
        log = []

        def proc():
            log.append(("start", eng.now))
            yield 2.0
            log.append(("mid", eng.now))
            yield 3.0
            log.append(("end", eng.now))

        eng.spawn(proc())
        eng.run()
        assert log == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]

    def test_two_processes_interleave(self):
        eng = Engine()
        log = []

        def ticker(name, period, count):
            for _ in range(count):
                yield period
                log.append((name, eng.now))

        eng.spawn(ticker("a", 2.0, 3))
        eng.spawn(ticker("b", 3.0, 2))
        eng.run()
        # At t=6 both are due; b's step was scheduled earlier (at t=3)
        # so FIFO tie-breaking fires it first.
        assert log == [("a", 2.0), ("b", 3.0), ("a", 4.0), ("b", 6.0), ("a", 6.0)]

    def test_negative_yield_rejected(self):
        eng = Engine()

        def bad():
            yield -1.0

        eng.spawn(bad())
        with pytest.raises(SimulationError):
            eng.run()

    def test_process_cancel_stops_next_step(self):
        eng = Engine()
        log = []

        def proc():
            while True:
                yield 1.0
                log.append(eng.now)

        handle = eng.spawn(proc())
        handle.cancel()  # cancels the bootstrap step
        eng.run()
        assert log == []
