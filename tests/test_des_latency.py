"""Tests for client-observed latency measurement in the DES."""

import pytest

from repro.core.liveness import SetLiveness
from repro.engine.des_driver import DesExperiment
from repro.net.topology import ConstantLatency
from repro.workloads import UniformDemand


def make_exp(m=5, target=13, total_rate=200.0, hop_latency=0.01,
             capacity=10_000.0, **kw):
    liveness = SetLiveness(m, range(1 << m))
    rates = UniformDemand().rates(total_rate, liveness)
    return DesExperiment(
        m=m, target=target, entry_rates=rates, capacity=capacity,
        latency=ConstantLatency(hop_latency), **kw
    )


class TestLatencyMeasurement:
    def test_latency_scales_with_hops(self):
        exp = make_exp(hop_latency=0.01)
        result = exp.run(duration=5.0)
        # Response time = (client->entry) + hops + (server->client),
        # i.e. (hop_mean + 2) network legs on average.
        expected = (result.hop_mean + 2) * 0.01
        assert result.latency_mean == pytest.approx(expected, rel=0.15)

    def test_latency_zero_with_zero_network(self):
        exp = make_exp(hop_latency=0.0)
        result = exp.run(duration=3.0)
        assert result.latency_mean == 0.0

    def test_p95_at_least_mean(self):
        exp = make_exp(hop_latency=0.02)
        result = exp.run(duration=4.0)
        assert result.latency_p95 >= result.latency_mean

    def test_latency_bounded_by_worst_path(self):
        exp = make_exp(hop_latency=0.01)
        result = exp.run(duration=4.0)
        # Worst case: m forwarding hops + entry leg + reply leg.
        assert result.latency_p95 <= (exp.m + 2) * 0.01 + 1e-9

    def test_replicas_cut_latency(self):
        # With the file replicated widely, requests stop earlier.
        far = make_exp(total_rate=150.0, seed=1).run(duration=5.0)
        crowded = make_exp(total_rate=1500.0, capacity=100.0, seed=1)
        result = crowded.run(duration=10.0)
        assert result.replicas_created > 0
        assert result.latency_mean < far.latency_mean + 0.05
