"""Tests for the placement audit (repro.cluster.audit)."""

import pytest

from repro.cluster import LessLogSystem
from repro.cluster.audit import audit_system


def loaded(m=5, b=1, dead=(), files=5):
    system = LessLogSystem.build(m=m, b=b, dead=set(dead))
    for i in range(files):
        system.insert(f"f{i}", payload=i)
    return system


class TestHealthySystem:
    def test_all_files_ok(self):
        audit = audit_system(loaded())
        assert audit.healthy
        assert len(audit.files) == 5
        assert audit.lost_files == []
        for f in audit.files:
            assert f.healthy
            assert len(f.inserted_at) == 2  # b=1 -> two homes
            assert f.unreachable == []

    def test_copy_accounting(self):
        system = loaded()
        home = system.holders_of("f0")[0]
        system.replicate("f0", overloaded=home)
        audit = audit_system(system)
        f0 = next(f for f in audit.files if f.name == "f0")
        assert len(f0.replicas_at) == 1
        assert f0.copies == 3
        assert audit.total_copies() == 11

    def test_render_mentions_status(self):
        text = audit_system(loaded()).render()
        assert "system healthy" in text
        assert "OK" in text


class TestDegradedSystem:
    def test_lost_file_reported(self):
        system = LessLogSystem.build(m=4, b=0)
        name = system.psi.find_name_for_target(4)
        system.insert(name)
        system.fail(4)
        audit = audit_system(system)
        record = next(f for f in audit.files if f.name == name)
        assert record.lost
        assert audit.lost_files == [name]
        assert "LOST" in audit.render()

    def test_displaced_home_counted(self):
        # Dead target: the inserted copy sits below the nominal slot.
        system = LessLogSystem.build(m=4, b=0, dead={4, 5})
        name = system.psi.find_name_for_target(4)
        system.insert(name)
        audit = audit_system(system)
        record = next(f for f in audit.files if f.name == name)
        assert record.displaced_subtrees == 1
        assert record.healthy  # displaced is informational, not unhealthy

    def test_unreachable_copy_flags_unhealthy(self):
        # Manufacture an orphan by hand (the churn GC normally prevents
        # this): a replica at a node whose broadcast chain has a gap.
        from repro.node.storage import FileOrigin

        system = LessLogSystem.build(m=4, b=0)
        name = system.psi.find_name_for_target(4)
        system.insert(name)
        tree = system.tree(4)
        grandchild = tree.children(tree.children(4)[0])[0]
        system.stores[grandchild].store(name, None, 1, FileOrigin.REPLICATED)
        audit = audit_system(system)
        record = next(f for f in audit.files if f.name == name)
        assert record.unreachable == [grandchild]
        assert not audit.healthy
        assert "ATTENTION NEEDED" in audit.render()


class TestCliAudit:
    def test_snapshot_then_audit(self, tmp_path):
        from repro.cli import main

        snap = tmp_path / "s.json"
        assert main(["snapshot-demo", "-o", str(snap)]) == 0
        assert main(["audit", str(snap)]) == 0

    def test_audit_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["audit", str(tmp_path / "nope.json")]) == 2
