"""Scenario fuzzer, shrinker, and replay (repro.verify).

Covers the full loop the tooling promises: a clean system fuzzes
violation-free; an injected placement bug is caught, delta-debugged to
a handful of events, serialized, and replays deterministically.
"""

import json

import pytest

from repro.cli import main
from repro.cluster import LessLogSystem
from repro.verify import (
    FuzzConfig,
    Scenario,
    ScenarioEvent,
    ScenarioFuzzer,
    ScenarioHarness,
    Shrinker,
    generate_scenario,
    load_repro,
    replay_file,
    replay_scenario,
    save_repro,
)
from repro.verify.fuzzer import NO_CRASH


class TestScenarioModel:
    def test_generation_deterministic(self):
        a = generate_scenario(seed=9, m=5, b=1, n_events=30)
        b = generate_scenario(seed=9, m=5, b=1, n_events=30)
        assert a.events == b.events and a.dead == b.dead

    def test_json_round_trip(self):
        scenario = generate_scenario(seed=4, m=5, b=1, n_events=25)
        back = Scenario.from_json(scenario.to_json())
        assert back.events == scenario.events
        assert (back.m, back.b, back.seed, back.dead) == (
            scenario.m, scenario.b, scenario.seed, scenario.dead,
        )

    def test_unknown_mutation_rejected(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown mutation"):
            ScenarioHarness(Scenario(m=4, b=0, seed=0, mutation="nope"))

    def test_infeasible_events_skipped_not_raised(self):
        harness = ScenarioHarness(Scenario(m=4, b=0, seed=0, dead=[3]))
        assert not harness.apply(ScenarioEvent("get", {"file": "ghost", "entry": 1}))
        assert not harness.apply(ScenarioEvent("get", {"file": "ghost", "entry": 3}))
        assert not harness.apply(ScenarioEvent("replicate", {"file": "ghost"}))
        assert not harness.apply(ScenarioEvent("join", {"pid": 1}))  # already live
        assert harness.skipped == 4 and harness.applied == 0

    def test_same_scenario_same_trajectory(self):
        scenario = generate_scenario(seed=12, m=5, b=1, n_events=40)
        from repro.cluster.snapshot import snapshot_to_json

        snapshots = []
        for _ in range(2):
            harness = ScenarioHarness(scenario)
            for event in scenario.events:
                harness.apply(event)
            snapshots.append(snapshot_to_json(harness.system))
        assert snapshots[0] == snapshots[1]


@pytest.mark.fuzz
class TestFuzzSmoke:
    """Bounded tier-1 smoke: N seeds, small m, all invariants."""

    def test_clean_system_fuzzes_clean(self):
        report = ScenarioFuzzer().fuzz(
            FuzzConfig(seeds=8, m=5, b=1, events=35)
        )
        assert report.ok, report.render()
        assert report.scenarios == 8
        assert report.checks > 1000
        assert report.events_applied > 100

    def test_b0_and_b2_shapes(self):
        for m, b in ((4, 0), (5, 2)):
            report = ScenarioFuzzer().fuzz(
                FuzzConfig(seeds=4, m=m, b=b, events=30)
            )
            assert report.ok, report.render()


class TestLiveSegmentOp:
    """The runtime-driven fuzzer op: seeded segments through the live
    asyncio runtime, audited for oracle conformance."""

    def test_scripted_segment_records_a_conformant_report(self):
        harness = ScenarioHarness(Scenario(m=4, b=1, seed=0))
        event = ScenarioEvent(
            "live_segment",
            {"m": 3, "b": 1, "files": 2, "ops": 6, "seed": 42},
        )
        assert harness.apply(event)
        assert len(harness.live_reports) == 1
        report = harness.live_reports[-1]
        assert report.ok, report.render()

    def test_mixed_codec_segment_applies(self):
        harness = ScenarioHarness(Scenario(m=4, b=1, seed=1))
        event = ScenarioEvent(
            "live_segment",
            {"m": 3, "b": 0, "files": 2, "ops": 6, "seed": 5,
             "mixed": True, "coalesce_bytes": 4096},
        )
        assert harness.apply(event)
        assert harness.live_reports[-1].ok, harness.live_reports[-1].render()

    def test_generator_emits_live_segments(self):
        ops = [
            event.op
            for seed in range(6)
            for event in generate_scenario(seed=seed, m=5, b=1,
                                           n_events=40).events
        ]
        assert "live_segment" in ops

    def test_conformance_invariant_audits_the_last_report(self):
        from repro.verify.invariants import RuntimeConformance

        names = [inv.name for inv in __import__(
            "repro.verify.invariants", fromlist=["default_invariants"]
        ).default_invariants()]
        assert RuntimeConformance.name in names


class TestLiveOverloadOp:
    """The overload fuzzer op: a flash-crowd burst against a bounded
    inbox through the live runtime, audited for ledger conservation
    and oracle conformance."""

    def _event(self, **overrides):
        params = {
            "shed": "conservative", "queue": "fcfs", "victim": "lifo",
            "inbox_limit": 2, "files": 1, "rps": 400,
            "duration": 0.15, "seed": 13,
        }
        params.update(overrides)
        return ScenarioEvent("live_overload", params)

    def test_scripted_burst_records_a_conserved_report(self):
        harness = ScenarioHarness(Scenario(m=4, b=1, seed=0))
        assert harness.apply(self._event())
        assert len(harness.overload_reports) == 1
        record = harness.overload_reports[-1]
        assert record["cell"] == "conservative/fcfs/lifo"
        assert record["requests"] > 0
        assert record["conserved"], record
        assert record["conformant"], record

    def test_unknown_policy_cell_is_skipped_not_raised(self):
        harness = ScenarioHarness(Scenario(m=4, b=1, seed=0))
        assert not harness.apply(self._event(shed="nope"))
        assert harness.skipped == 1 and not harness.overload_reports

    def test_generator_emits_live_overload(self):
        ops = [
            event.op
            for seed in range(8)
            for event in generate_scenario(seed=seed, m=5, b=1,
                                           n_events=40).events
        ]
        assert "live_overload" in ops

    def test_overload_invariant_is_registered(self):
        from repro.verify.invariants import OverloadAccounting, default_invariants

        names = [inv.name for inv in default_invariants()]
        assert OverloadAccounting.name in names

    def test_generator_emits_live_churn_overload(self):
        ops = [
            event.op
            for seed in range(8)
            for event in generate_scenario(seed=seed, m=5, b=1,
                                           n_events=40).events
        ]
        assert "live_churn_overload" in ops

    def test_stale_redirect_invariant_is_registered(self):
        from repro.verify.invariants import StaleRedirect, default_invariants

        names = [inv.name for inv in default_invariants()]
        assert StaleRedirect.name in names


@pytest.mark.fuzz
class TestChurnedBurstsFuzzClean:
    """The churned overload op against the *fixed* runtime: across
    several generator seeds containing mid-burst silent kills, the
    stale-redirect and overload-conservation invariants hold."""

    def test_clean_across_seeds(self):
        # Deterministic precondition: these base seeds actually carry
        # churned bursts, so the stale-redirect invariant is exercised
        # on >= 3 distinct seeds rather than vacuously passing.
        churned_seeds = [
            seed for seed in range(7)
            if any(e.op == "live_churn_overload"
                   for e in generate_scenario(seed=seed, m=5, b=1,
                                              n_events=40).events)
        ]
        assert len(churned_seeds) >= 3, churned_seeds
        report = ScenarioFuzzer().fuzz(
            FuzzConfig(seeds=7, m=5, b=1, events=40)
        )
        assert report.ok, report.render()


@pytest.mark.fuzz
class TestStaleHintCaught:
    """Acceptance path for the churn-hardened redirect machinery: with
    the client-side reroute disabled (the pre-fix behavior), a silent
    mid-burst crash turns cached redirect hints into terminal sheds —
    caught by stale-redirect, delta-debugged to the single churned
    burst, and replayed deterministically from its JSON."""

    def _scenario(self):
        return Scenario(
            m=3, b=1, seed=7, mutation="stale-hint",
            events=[
                ScenarioEvent("insert", {"file": "f0"}),
                ScenarioEvent("get", {"file": "f0", "entry": 1}),
                ScenarioEvent("live_churn_overload", {
                    "shed": "conservative", "queue": "fcfs",
                    "victim": "lifo", "inbox_limit": 2, "files": 1,
                    "rps": 800, "duration": 0.3, "seed": 7,
                    "service_time": 0.005,
                }),
            ],
        )

    def test_stale_hint_caught_shrunk_and_replayed(self, tmp_path):
        violation = ScenarioFuzzer().run_scenario(self._scenario())
        assert violation is not None, "stale hints were not caught"
        assert violation.invariant == "stale-redirect"
        assert "hint named a dead node" in violation.message

        minimized, shrunk = Shrinker().shrink(violation.scenario, violation)
        assert [e.op for e in minimized.events] == ["live_churn_overload"]
        assert shrunk.invariant == violation.invariant

        path = save_repro(tmp_path / "stale.json", minimized, shrunk)
        outcomes = [replay_file(path) for _ in range(2)]
        assert all(o.reproduced for o in outcomes)
        assert outcomes[0].violation.step == outcomes[1].violation.step


@pytest.mark.fuzz
class TestPhantomShedCaught:
    """Acceptance path for the overload ledger: a mutation that invents
    a shed is caught by overload-shed-conservation, delta-debugged to a
    single burst event, and replays deterministically from its JSON."""

    def _scenario(self):
        return Scenario(
            m=4, b=1, seed=0, mutation="phantom-shed",
            events=[
                ScenarioEvent("insert", {"file": "f0"}),
                ScenarioEvent("get", {"file": "f0", "entry": 1}),
                ScenarioEvent("live_overload", {
                    "shed": "aggressive", "queue": "priority",
                    "victim": "fifo", "inbox_limit": 2, "files": 1,
                    "rps": 400, "duration": 0.15, "seed": 13,
                }),
            ],
        )

    def test_phantom_shed_caught_shrunk_and_replayed(self, tmp_path):
        violation = ScenarioFuzzer().run_scenario(self._scenario())
        assert violation is not None, "phantom shed was not caught"
        assert violation.invariant == "overload-shed-conservation"
        assert "shed" in violation.message

        minimized, shrunk = Shrinker().shrink(violation.scenario, violation)
        assert [e.op for e in minimized.events] == ["live_overload"]
        assert shrunk.invariant == violation.invariant

        path = save_repro(tmp_path / "shed.json", minimized, shrunk)
        outcomes = [replay_file(path) for _ in range(2)]
        assert all(o.reproduced for o in outcomes)
        assert outcomes[0].violation.step == outcomes[1].violation.step


@pytest.mark.fuzz
class TestMutationCaught:
    """Acceptance path: injected bug → caught → shrunk ≤ 10 → replays."""

    def _first_violation(self, mutation):
        report = ScenarioFuzzer().fuzz(
            FuzzConfig(seeds=4, m=5, b=1, events=40, mutation=mutation)
        )
        assert not report.ok, f"{mutation} was not caught"
        return report.violations[0]

    def test_placement_bug_caught_shrunk_and_replayed(self, tmp_path):
        violation = self._first_violation("misplace-replica")
        assert violation.invariant == "placement-binomial-subtree"

        shrinker = Shrinker()
        minimized, shrunk = shrinker.shrink(violation.scenario, violation)
        assert len(minimized.events) <= 10
        assert shrunk.invariant == violation.invariant

        path = save_repro(tmp_path / "repro.json", minimized, shrunk)
        outcomes = [replay_file(path) for _ in range(2)]
        assert all(o.reproduced for o in outcomes)
        assert outcomes[0].violation.step == outcomes[1].violation.step
        assert outcomes[0].violation.message == outcomes[1].violation.message

    def test_skip_update_caught(self):
        violation = self._first_violation("skip-update")
        assert violation.invariant == "version-coherence"

    def test_conflated_drop_accounting_caught(self):
        violation = self._first_violation("conflate-drops")
        assert violation.invariant == "metrics-trace-reconcile"

    def test_dropped_timeout_caught(self):
        # The mutation cancels a doomed request's deadline event: it can
        # neither complete nor expire, so once the engine drains the
        # lifecycle invariant must see it stuck inflight.
        violation = self._first_violation("drop-timeout")
        assert violation.invariant == "request-lifecycle-conservation"
        assert "timeout event was lost" in violation.message


class TestShrinker:
    def test_shrinks_to_minimal_pair(self):
        scenario = generate_scenario(
            seed=1, m=4, b=1, n_events=40, mutation="misplace-replica"
        )
        violation = ScenarioFuzzer().run_scenario(scenario)
        assert violation is not None
        minimized, shrunk = Shrinker().shrink(violation.scenario, violation)
        ops = [e.op for e in minimized.events]
        assert ops == ["insert", "replicate"]
        assert shrunk.step == len(minimized.events) - 1

    def test_nonreproducing_input_returned_unshrunk(self):
        scenario = generate_scenario(seed=0, m=4, b=1, n_events=10)
        clean = ScenarioFuzzer().run_scenario(scenario)
        assert clean is None
        # Fabricate a "violation" that does not reproduce: the shrinker
        # must hand back its input rather than invent a repro.
        from repro.verify.fuzzer import Violation

        fake = Violation(
            invariant="placement-binomial-subtree", message="fake",
            seed=0, step=len(scenario.events) - 1, scenario=scenario,
        )
        minimized, result = Shrinker().shrink(scenario, fake)
        assert result is fake and minimized is scenario

    def test_repro_file_round_trip(self, tmp_path):
        scenario = generate_scenario(
            seed=2, m=4, b=1, n_events=30, mutation="skip-update"
        )
        violation = ScenarioFuzzer().run_scenario(scenario)
        assert violation is not None
        path = save_repro(tmp_path / "case.json", violation.scenario, violation)
        loaded, expected = load_repro(path)
        assert loaded.events == violation.scenario.events
        assert expected["invariant"] == violation.invariant


class TestCrashTreatedAsViolation:
    def test_apply_exception_reported_not_raised(self):
        scenario = Scenario(
            m=4, b=0, seed=0,
            events=[ScenarioEvent("insert", {})],  # missing "file" → KeyError
        )
        violation = ScenarioFuzzer().run_scenario(scenario)
        assert violation is not None and violation.invariant == NO_CRASH
        assert "KeyError" in violation.message


class TestRemoveReplicaOrphanRegression:
    def test_counter_removal_gcs_orphaned_replicas(self):
        # Found by this fuzzer (seed 1, m=4, b=0): insert → replicate
        # twice builds a holder chain home → r1 → r2; counter-based
        # removal of the middle replica r1 used to leave r2 orphaned,
        # unreachable by the top-down update broadcast.
        scenario = Scenario(
            m=4, b=0, seed=1, dead=[2],
            events=[
                ScenarioEvent("insert", {"file": "f1"}),
                ScenarioEvent("replicate", {"file": "f1", "holder": 0}),
                ScenarioEvent("replicate", {"file": "f1", "holder": 13}),
                ScenarioEvent("remove_replica", {"file": "f1", "index": 2}),
            ],
        )
        assert replay_scenario(scenario) is None

    def test_remove_replica_keeps_reachability_directly(self):
        system = LessLogSystem.build(m=4, b=0)
        name = "doc"
        system.insert(name, payload="x")
        home = system.holders_of(name)[0]
        first = system.replicate(name, overloaded=home)
        second = system.replicate(name, overloaded=first) if first is not None else None
        if first is None or second is None:
            pytest.skip("policy had no placement for this shape")
        system.remove_replica(name, first)
        assert set(system.reachable_holders(name)) == set(system.holders_of(name))


class TestVerifyCli:
    def test_fuzz_clean_exit_zero(self, capsys):
        assert main(["verify", "fuzz", "--seeds", "2", "--m", "4", "--events", "20"]) == 0
        out = capsys.readouterr().out
        assert "no violations found" in out

    def test_fuzz_mutation_writes_repro_and_replay_reproduces(self, capsys, tmp_path):
        code = main([
            "verify", "fuzz", "--seeds", "3", "--m", "4", "--events", "25",
            "--mutate", "misplace-replica", "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION" in out and "shrunk" in out
        repros = sorted(tmp_path.glob("repro_*.json"))
        assert repros
        document = json.loads(repros[0].read_text())
        assert document["violation"]["invariant"] == "placement-binomial-subtree"
        assert main(["verify", "replay", str(repros[0])]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_replay_missing_file(self, capsys, tmp_path):
        assert main(["verify", "replay", str(tmp_path / "nope.json")]) == 2
        assert "no such repro" in capsys.readouterr().err
