"""Integration tests for LessLogSystem file operations."""

import pytest

from repro.baselines import LogBasedPolicy, RandomPolicy
from repro.cluster import LessLogSystem
from repro.core.errors import (
    ConfigurationError,
    FileNotFoundInSystemError,
    NodeDownError,
    StorageError,
)
from repro.core.hashing import Psi
from repro.node.storage import FileOrigin


def system_with_file(m=4, b=0, dead=None, target=4):
    """A system plus a file name hashing to ``target``."""
    sys_ = LessLogSystem.build(m=m, b=b, dead=set(dead or ()))
    name = sys_.psi.find_name_for_target(target)
    return sys_, name


class TestBuild:
    def test_default_full_system(self):
        sys_ = LessLogSystem.build(m=4)
        assert sys_.n_live == 16

    def test_dead_set(self):
        sys_ = LessLogSystem.build(m=4, dead={1, 2})
        assert sys_.n_live == 14
        assert not sys_.is_live(1)

    def test_n_live_sampled(self):
        sys_ = LessLogSystem.build(m=5, n_live=20, seed=1)
        assert sys_.n_live == 20

    def test_dead_and_n_live_conflict(self):
        with pytest.raises(ConfigurationError):
            LessLogSystem.build(m=4, dead={1}, n_live=3)

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigurationError):
            LessLogSystem(m=4, live=set())

    def test_mismatched_psi_rejected(self):
        with pytest.raises(ConfigurationError):
            LessLogSystem(m=4, psi=Psi(5))


class TestInsert:
    def test_insert_stores_at_target_when_live(self):
        sys_, name = system_with_file(target=4)
        result = sys_.insert(name, payload=b"data")
        assert result.homes == (4,)
        assert name in sys_.stores[4]
        assert sys_.stores[4].get(name, count_access=False).origin is FileOrigin.INSERTED

    def test_insert_with_dead_target_uses_most_offspring_live(self):
        # §5.1 example: P(4), P(5) dead, ψ(f)=4 -> stored at P(6).
        sys_, name = system_with_file(dead=[4, 5], target=4)
        result = sys_.insert(name)
        assert result.homes == (6,)

    def test_duplicate_insert_rejected(self):
        sys_, name = system_with_file()
        sys_.insert(name)
        with pytest.raises(StorageError):
            sys_.insert(name)

    def test_insert_from_dead_entry_rejected(self):
        sys_, name = system_with_file(dead=[3])
        with pytest.raises(NodeDownError):
            sys_.insert(name, entry=3)

    def test_fault_tolerant_insert_2b_copies(self):
        sys_, name = system_with_file(b=2, target=4)
        result = sys_.insert(name, payload=b"x")
        assert len(result.homes) == 4
        sys_.check_invariants()


class TestGet:
    def test_get_routes_along_paper_path(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name, payload=b"pdf")
        result = sys_.get(name, entry=8)
        assert result.route == (8, 0, 4)
        assert result.server == 4
        assert result.payload == b"pdf"
        assert result.hops == 2

    def test_get_stops_at_replica_on_path(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name, payload=b"pdf")
        sys_.replicate(name, overloaded=4)  # replica at P(5)? no: biggest child
        # The LessLog replica goes to P(5); route from nodes under P(5)
        # must now stop there.
        holders = sys_.holders_of(name)
        assert set(holders) == {4, 5}
        under_5 = [p for p in sys_.tree(4).iter_subtree(5) if p != 5]
        result = sys_.get(name, entry=under_5[0])
        assert result.server == 5

    def test_get_from_every_entry_succeeds(self):
        sys_, name = system_with_file(dead=[4, 5], target=4)
        sys_.insert(name, payload=1)
        for entry in sys_.membership.live_pids():
            assert sys_.get(name, entry=entry).payload == 1

    def test_get_missing_file_raises(self):
        sys_, _ = system_with_file()
        with pytest.raises(FileNotFoundInSystemError):
            sys_.get("nope", entry=0)

    def test_get_dead_entry_rejected(self):
        sys_, name = system_with_file(dead=[7])
        sys_.insert(name)
        with pytest.raises(NodeDownError):
            sys_.get(name, entry=7)

    def test_get_bumps_access_counter(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name)
        sys_.get(name, entry=4)
        sys_.get(name, entry=8)
        assert sys_.stores[4].get(name, count_access=False).access_count == 2

    def test_subtree_migration_on_fault(self):
        # b=2: kill the entry's whole subtree home; the request must
        # migrate to another subtree and still find the file.
        sys_, name = system_with_file(m=4, b=2, target=4)
        result = sys_.insert(name, payload="v")
        victim = result.homes[0]
        sys_.fail(victim)
        # Any surviving entry can still read the file.
        entry = next(iter(sys_.membership.live_pids()))
        got = sys_.get(name, entry=entry)
        assert got.payload == "v"

    def test_hops_bounded_by_m_plus_jump(self):
        sys_, name = system_with_file(m=6, dead=[13], target=13)
        sys_.insert(name)
        for entry in sys_.membership.live_pids():
            assert sys_.get(name, entry=entry).hops <= 7


class TestUpdate:
    def test_update_reaches_all_copies(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name, payload="v1")
        for _ in range(4):
            sys_.replicate(name, overloaded=4)
        result = sys_.update(name, payload="v2")
        assert set(result.updated) == set(sys_.holders_of(name))
        for pid in sys_.holders_of(name):
            assert sys_.stores[pid].get(name, count_access=False).payload == "v2"

    def test_update_cascades_through_replica_chain(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name, payload="v1")
        sys_.replicate(name, overloaded=4)      # -> P(5)
        sys_.replicate(name, overloaded=5)      # -> P(5)'s biggest child
        result = sys_.update(name, payload="v2")
        assert len(result.updated) == 3
        sys_.check_invariants()

    def test_update_missing_file_raises(self):
        sys_, _ = system_with_file()
        with pytest.raises(FileNotFoundInSystemError):
            sys_.update("ghost", payload=0)

    def test_update_bumps_version(self):
        sys_, name = system_with_file()
        sys_.insert(name, payload=0)
        r1 = sys_.update(name, payload=1)
        r2 = sys_.update(name, payload=2)
        assert (r1.version, r2.version) == (2, 3)

    def test_update_with_dead_root_bypasses(self):
        # §3: update bypasses a dead node to its children list.
        sys_, name = system_with_file(dead=[4, 5], target=4)
        sys_.insert(name, payload="v1")  # home is P(6)
        sys_.replicate(name, overloaded=6)
        result = sys_.update(name, payload="v2")
        assert set(result.updated) == set(sys_.holders_of(name))

    def test_update_fault_tolerant_all_subtrees(self):
        sys_, name = system_with_file(b=2, target=4)
        sys_.insert(name, payload="v1")
        result = sys_.update(name, payload="v2")
        assert len(result.updated) == 4
        for pid in sys_.holders_of(name):
            assert sys_.stores[pid].get(name, count_access=False).payload == "v2"


class TestReplicate:
    def test_lesslog_replication_order(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name)
        # Children list of P(4): (5, 6, 0, 12).
        assert sys_.replicate(name, overloaded=4) == 5
        assert sys_.replicate(name, overloaded=4) == 6
        assert sys_.replicate(name, overloaded=4) == 0
        assert sys_.replicate(name, overloaded=4) == 12

    def test_replicate_requires_holder(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name)
        with pytest.raises(StorageError):
            sys_.replicate(name, overloaded=9)

    def test_replicate_missing_file(self):
        sys_, _ = system_with_file()
        with pytest.raises(FileNotFoundInSystemError):
            sys_.replicate("ghost", overloaded=0)

    def test_replicate_with_random_policy(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name)
        target = sys_.replicate(name, overloaded=4, policy=RandomPolicy())
        assert target in set(range(16)) - {4}
        assert sys_.replica_count(name) == 1

    def test_replicate_with_logbased_policy(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name)
        target = sys_.replicate(
            name, overloaded=4, policy=LogBasedPolicy(),
            forwarder_rates={6: 50.0, 5: 10.0},
        )
        assert target == 6

    def test_replicate_within_subtree_b2(self):
        sys_, name = system_with_file(b=2, target=4)
        result = sys_.insert(name)
        home = result.homes[0]
        target = sys_.replicate(name, overloaded=home)
        # The replica must land in the same subtree as the overloaded home.
        from repro.core.subtree import subtree_of_pid

        tree = sys_.tree(4)
        assert subtree_of_pid(tree, target, 2) == subtree_of_pid(tree, home, 2)
        sys_.check_invariants()

    def test_remove_replica(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name)
        target = sys_.replicate(name, overloaded=4)
        sys_.remove_replica(name, target)
        assert sys_.holders_of(name) == [4]

    def test_remove_replica_protects_inserted(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name)
        with pytest.raises(StorageError):
            sys_.remove_replica(name, 4)

    def test_replication_exhaustion_returns_none(self):
        sys_, name = system_with_file(m=2, target=3)
        sys_.insert(name)
        seen = set()
        for _ in range(10):
            t = sys_.replicate(name, overloaded=3)
            if t is None:
                break
            seen.add(t)
        assert sys_.replicate(name, overloaded=3) is None
        # Only the root's own children list is reachable from the root
        # (grandchildren are served by replicating from the children).
        assert seen == set(sys_.tree(3).children(3))


class TestInvariants:
    def test_fresh_system_with_files(self):
        sys_ = LessLogSystem.build(m=5, dead={3, 9})
        for i in range(10):
            sys_.insert(f"file-{i}", payload=i)
        sys_.check_invariants()

    def test_invariants_catch_corruption(self):
        sys_, name = system_with_file(target=4)
        sys_.insert(name)
        # Corrupt: plant a second INSERTED copy somewhere else.
        sys_.stores[9].store(name, None, 1, FileOrigin.INSERTED)
        with pytest.raises(AssertionError):
            sys_.check_invariants()
