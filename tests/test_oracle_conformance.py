"""Conformance against independent brute-force oracles.

The core package computes everything with bitwise identities.  These
tests re-derive the same structures a completely different way —
explicit recursive tree construction and graph search — and compare
exhaustively at small widths.  Any algebra bug that slipped past the
example-based tests has to disagree with the oracle somewhere.
"""

import itertools

import pytest

from repro.core import vid as V
from repro.core.children import advanced_children_list
from repro.core.liveness import SetLiveness
from repro.core.routing import resolve_route, storage_node
from repro.core.tree import LookupTree


# -- oracle: explicit binomial-tree construction -------------------------

def oracle_children(m: int) -> dict[int, list[int]]:
    """Build the virtual tree's child lists by textbook recursion.

    A binomial tree B_k rooted at r is built by linking two B_{k-1}
    trees.  We instead construct from the paper's Property 1 read
    literally off binary strings — an independent string-based
    implementation (no shared helpers with the core package).
    """
    children: dict[int, list[int]] = {}
    for v in range(1 << m):
        bits = format(v, f"0{m}b")
        run = len(bits) - len(bits.lstrip("1"))
        kids = []
        for i in range(run):
            flipped = bits[:i] + "0" + bits[i + 1:]
            kids.append(int(flipped, 2))
        children[v] = kids
    return children


def oracle_parent_map(m: int) -> dict[int, int]:
    parents: dict[int, int] = {}
    for v, kids in oracle_children(m).items():
        for c in kids:
            parents[c] = v
    return parents


def oracle_subtree(v: int, m: int) -> set[int]:
    out = {v}
    stack = [v]
    children = oracle_children(m)
    while stack:
        node = stack.pop()
        for c in children[node]:
            out.add(c)
            stack.append(c)
    return out


def oracle_route(tree: LookupTree, entry: int, live: set[int]) -> list[int]:
    """GETFILE walk computed over the explicit parent map."""
    parents = oracle_parent_map(tree.m)
    route = [entry]
    vid = tree.vid_of(entry)
    top = (1 << tree.m) - 1
    current = vid
    while current != top:
        current = parents[current]
        pid = tree.pid_of(current)
        if pid in live:
            route.append(pid)
            vid = current
    # The storage jump: the live node with the largest VID.
    home_vid = max(tree.vid_of(p) for p in live)
    home = tree.pid_of(home_vid)
    if route[-1] != home:
        route.append(home)
    return route


# -- conformance tests ----------------------------------------------------

@pytest.mark.parametrize("m", [1, 2, 3, 4, 5])
class TestTreeConformance:
    def test_children_match_oracle(self, m):
        oracle = oracle_children(m)
        for v in range(1 << m):
            assert sorted(V.children_vids(v, m)) == sorted(oracle[v])

    def test_parents_match_oracle(self, m):
        parents = oracle_parent_map(m)
        for v in range((1 << m) - 1):
            assert V.parent_vid(v, m) == parents[v]

    def test_subtrees_match_oracle(self, m):
        for v in range(1 << m):
            assert set(V.iter_subtree(v, m)) == oracle_subtree(v, m)

    def test_subtree_sizes_match_oracle(self, m):
        for v in range(1 << m):
            assert V.subtree_size(v, m) == len(oracle_subtree(v, m))


class TestRouteConformance:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_exhaustive_small_widths(self, m):
        n = 1 << m
        for r in range(n):
            tree = LookupTree(r, m)
            # All dead-sets of size <= 2 (plus the empty set).
            dead_sets = [()]
            dead_sets += [(d,) for d in range(n)]
            dead_sets += list(itertools.combinations(range(n), 2))
            for dead in dead_sets:
                live = set(range(n)) - set(dead)
                if not live:
                    continue
                liveness = SetLiveness(m, live)
                for entry in live:
                    got = resolve_route(tree, entry, liveness)
                    expected = oracle_route(tree, entry, live)
                    assert got == expected, (
                        f"m={m} r={r} dead={dead} entry={entry}: "
                        f"{got} != {expected}"
                    )

    def test_randomized_m6(self):
        import random

        rng = random.Random(9)
        m, n = 6, 64
        for _ in range(40):
            r = rng.randrange(n)
            tree = LookupTree(r, m)
            dead = set(rng.sample(range(n), rng.randrange(0, 20)))
            live = set(range(n)) - dead
            if not live:
                continue
            liveness = SetLiveness(m, live)
            entry = rng.choice(sorted(live))
            assert resolve_route(tree, entry, liveness) == oracle_route(
                tree, entry, live
            )

    def test_storage_node_matches_oracle(self):
        m, n = 5, 32
        import random

        rng = random.Random(4)
        for _ in range(50):
            r = rng.randrange(n)
            tree = LookupTree(r, m)
            live = set(rng.sample(range(n), rng.randrange(1, n)))
            liveness = SetLiveness(m, live)
            home_vid = max(tree.vid_of(p) for p in live)
            assert storage_node(tree, liveness) == tree.pid_of(home_vid)


class TestChildrenListConformance:
    def oracle_children_list(self, tree: LookupTree, k: int, live: set[int]):
        """Fringe expansion over the explicit child map."""
        children = oracle_children(tree.m)

        def expand(vid):
            out = []
            for c in children[vid]:
                if tree.pid_of(c) in live:
                    out.append(c)
                else:
                    out.extend(expand(c))
            return out

        vids = sorted(expand(tree.vid_of(k)), reverse=True)
        return [tree.pid_of(v) for v in vids]

    @pytest.mark.parametrize("m", [3, 4])
    def test_exhaustive(self, m):
        import random

        rng = random.Random(1)
        n = 1 << m
        for _ in range(60):
            r = rng.randrange(n)
            tree = LookupTree(r, m)
            live = set(rng.sample(range(n), rng.randrange(1, n + 1)))
            liveness = SetLiveness(m, live)
            for k in sorted(live):
                assert advanced_children_list(tree, k, liveness) == (
                    self.oracle_children_list(tree, k, live)
                )
