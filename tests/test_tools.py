"""Tests for repository tooling (tools/gen_api_docs.py)."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_api_doc_generator_runs(tmp_path, monkeypatch):
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_docs.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    out = ROOT / "docs" / "api_overview.md"
    assert out.exists()
    text = out.read_text()
    # Spot-check a few load-bearing symbols are indexed.
    for symbol in (
        "choose_replica_target",
        "FluidSimulation",
        "LessLogSystem",
        "advanced_children_list",
        "DesExperiment",
    ):
        assert symbol in text, f"{symbol} missing from API overview"
    # Every core module section is present.
    for module in (
        "repro.core.vid",
        "repro.core.routing",
        "repro.engine.fluid",
        "repro.cluster.system",
    ):
        assert f"## `{module}`" in text
