"""Exact assertions on the paper's structural figures (Figures 1–4).

These pin the reproduction to the worked examples in the paper text, so
any regression in the bitwise algebra shows up as a figure mismatch.
"""

from repro.experiments.structures import (
    figure1_data,
    figure2_data,
    figure3_data,
    figure4_data,
    render_all,
)


class TestFigure1:
    def test_root_and_children(self):
        data = figure1_data()
        assert data["root"] == "1111"
        assert data["children"]["1111"] == ["1110", "1101", "1011", "0111"]

    def test_node_1110_has_three_children(self):
        # §2.1: "The node of VID 1110 has 3 children nodes; the VIDs of
        # the children nodes are 0110, 1010, and 1100."
        data = figure1_data()
        assert sorted(data["children"]["1110"]) == ["0110", "1010", "1100"]

    def test_offspring_counts(self):
        # §2.1: "the nodes of VID 1110 and 1101 has 7 and 3 offspring".
        data = figure1_data()
        assert data["offspring"]["1110"] == 7
        assert data["offspring"]["1101"] == 3
        assert data["offspring"]["1111"] == 15


class TestFigure2:
    def test_children_list(self):
        # §2.2: children list of P(4) is (P(5), P(6), P(0), P(12)).
        assert figure2_data()["children_list"] == [5, 6, 0, 12]

    def test_route_example(self):
        # §2.1: P(8) -> P(0) -> P(4).
        assert figure2_data()["example_route"] == [8, 0, 4]

    def test_pid_of_root_vid(self):
        assert figure2_data()["pid_of_vid"]["1111"] == 4

    def test_complement_mapping(self):
        # PID = VID XOR 1011 for the tree of P(4).
        data = figure2_data()
        assert data["pid_of_vid"]["1110"] == 5
        assert data["pid_of_vid"]["0011"] == 8


class TestFigure3:
    def test_children_list_with_dead_nodes(self):
        # §3: "(P(6), P(7), P(1), P(12), P(13), P(8)), sorted by the VID".
        data = figure3_data()
        assert data["children_list"] == [6, 7, 1, 12, 13, 8]
        assert data["dead"] == [0, 5]
        assert data["n_live"] == 14

    def test_children_list_vid_order(self):
        vids = figure3_data()["children_list_vids"]
        assert vids == sorted(vids, reverse=True)


class TestFigure4:
    def test_four_subtrees_of_four(self):
        data = figure4_data()
        assert len(data["subtrees"]) == 4
        for info in data["subtrees"].values():
            assert len(info["members"]) == 4
            assert info["root_svid"] == "11"

    def test_subtrees_partition_pids(self):
        data = figure4_data()
        seen = [pid for info in data["subtrees"].values() for pid in info["members"]]
        assert sorted(seen) == list(range(16))

    def test_leftmost_and_rightmost_identifiers(self):
        # §4: "the subtree identifier of the leftmost subtree is 10 and
        # of the rightmost is 11" — the ids cover all 2-bit patterns.
        assert set(figure4_data()["subtrees"]) == {"00", "01", "10", "11"}


class TestRenderAll:
    def test_render_contains_key_facts(self):
        text = render_all()
        assert "children list of P(4): [5, 6, 0, 12]" in text
        assert "children list of P(4): [6, 7, 1, 12, 13, 8]" in text
        assert "route P(8) -> P(4): [8, 0, 4]" in text
