"""Unit tests for the fault-tolerant subtree model (repro.core.subtree)."""

import pytest

from repro.core.errors import ConfigurationError, NoLiveNodeError
from repro.core.liveness import AllLive, SetLiveness
from repro.core.subtree import (
    SubtreeView,
    check_b,
    insert_targets,
    join_vid,
    migration_order,
    split_vid,
    subtree_of_pid,
)
from repro.core.tree import LookupTree


@pytest.fixture
def tree4():
    return LookupTree(4, 4)


class TestSplitJoin:
    def test_roundtrip(self):
        for vid in range(16):
            for b in (0, 1, 2, 3):
                svid, sid = split_vid(vid, 4, b)
                assert join_vid(svid, sid, 4, b) == vid

    def test_figure4_identifiers(self):
        # Figure 4: m=4, b=2.  Low 2 bits are the subtree id.
        assert split_vid(0b1111, 4, 2) == (0b11, 0b11)
        assert split_vid(0b1100, 4, 2) == (0b11, 0b00)
        assert split_vid(0b0110, 4, 2) == (0b01, 0b10)

    def test_check_b_bounds(self):
        check_b(0, 4)
        check_b(3, 4)
        with pytest.raises(ConfigurationError):
            check_b(4, 4)
        with pytest.raises(ConfigurationError):
            check_b(-1, 4)


class TestSubtreeView:
    def test_b0_is_whole_tree(self, tree4):
        view = SubtreeView(tree4, 0, 0)
        assert view.size == 16
        assert view.root_pid == 4
        assert sorted(view.members()) == list(range(16))

    def test_figure4_four_subtrees(self, tree4):
        # m=4, b=2: 4 subtrees of 4 nodes each, partitioning all PIDs.
        seen: set[int] = set()
        for sid in range(4):
            view = SubtreeView(tree4, 2, sid)
            members = view.members()
            assert len(members) == 4
            seen.update(members)
        assert seen == set(range(16))

    def test_subtree_root_vid_pattern(self, tree4):
        # §4: "the subtree VID of the root node in each subtree is 11" —
        # the all-ones (m-b)-bit pattern.
        for sid in range(4):
            view = SubtreeView(tree4, 2, sid)
            assert view.svid_of(view.root_pid) == 0b11

    def test_members_are_binomial_tree(self, tree4):
        view = SubtreeView(tree4, 2, 0b01)
        root = view.root_pid
        # Width-2 binomial tree: root has two children, one of which
        # has one child.
        kids = view.children(root)
        assert len(kids) == 2
        assert len(view.children(kids[0])) == 1
        assert view.children(kids[1]) == []

    def test_parent_child_consistency(self, tree4):
        for b in (1, 2):
            for sid in range(1 << b):
                view = SubtreeView(tree4, b, sid)
                for pid in view.members():
                    for c in view.children(pid):
                        assert view.parent(c) == pid

    def test_contains(self, tree4):
        view = SubtreeView(tree4, 2, 0)
        for pid in range(16):
            assert view.contains(pid) == (subtree_of_pid(tree4, pid, 2) == 0)

    def test_svid_of_foreign_pid_raises(self, tree4):
        view = SubtreeView(tree4, 2, 0)
        foreign = next(p for p in range(16) if not view.contains(p))
        with pytest.raises(ConfigurationError):
            view.svid_of(foreign)

    def test_bad_sid_raises(self, tree4):
        with pytest.raises(ConfigurationError):
            SubtreeView(tree4, 2, 4)


class TestSubtreeRouting:
    def test_storage_node_all_live(self, tree4):
        for sid in range(4):
            view = SubtreeView(tree4, 2, sid)
            assert view.storage_node(AllLive(4)) == view.root_pid

    def test_storage_node_with_dead_root(self, tree4):
        view = SubtreeView(tree4, 2, 0)
        root = view.root_pid
        liveness = SetLiveness.all_but(4, dead=[root])
        home = view.storage_node(liveness)
        assert home != root and view.contains(home)
        # It must be the live member with the largest subtree VID.
        live_svids = [
            view.svid_of(p) for p in view.members() if liveness.is_live(p)
        ]
        assert view.svid_of(home) == max(live_svids)

    def test_resolve_route_stays_in_subtree(self, tree4):
        liveness = SetLiveness.all_but(4, dead=[2])
        for sid in range(4):
            view = SubtreeView(tree4, 2, sid)
            for entry in view.members():
                if not liveness.is_live(entry):
                    continue
                route = view.resolve_route(entry, liveness)
                assert all(view.contains(p) for p in route)
                assert route[-1] == view.storage_node(liveness)

    def test_route_from_dead_entry_raises(self, tree4):
        view = SubtreeView(tree4, 2, subtree_of_pid(tree4, 2, 2))
        liveness = SetLiveness.all_but(4, dead=[2])
        with pytest.raises(NoLiveNodeError):
            view.resolve_route(2, liveness)

    def test_find_live_node_empty_subtree(self, tree4):
        view = SubtreeView(tree4, 2, 0)
        liveness = SetLiveness.all_but(4, dead=view.members())
        with pytest.raises(NoLiveNodeError):
            view.storage_node(liveness)


class TestInsertTargets:
    def test_b0_single_target(self, tree4):
        assert insert_targets(tree4, 0, AllLive(4)) == [4]

    def test_b2_four_targets_one_per_subtree(self, tree4):
        targets = insert_targets(tree4, 2, AllLive(4))
        assert len(targets) == 4
        sids = {subtree_of_pid(tree4, t, 2) for t in targets}
        assert sids == {0, 1, 2, 3}

    def test_targets_survive_single_failure(self, tree4):
        # Fault-tolerance guarantee: 2**b targets fail only if all die.
        targets = insert_targets(tree4, 2, AllLive(4))
        for victim in targets:
            liveness = SetLiveness.all_but(4, dead=[victim])
            remaining = insert_targets(tree4, 2, liveness)
            assert len(remaining) == 4  # replacement found in the subtree

    def test_dead_subtree_skipped(self, tree4):
        view = SubtreeView(tree4, 2, 0)
        liveness = SetLiveness.all_but(4, dead=view.members())
        targets = insert_targets(tree4, 2, liveness)
        assert len(targets) == 3
        assert all(not view.contains(t) for t in targets)


class TestMigrationOrder:
    def test_own_subtree_first(self, tree4):
        for entry in range(16):
            order = migration_order(tree4, 2, entry)
            assert order[0] == subtree_of_pid(tree4, entry, 2)
            assert sorted(order) == [0, 1, 2, 3]

    def test_b0_trivial(self, tree4):
        assert migration_order(tree4, 0, 7) == [0]
