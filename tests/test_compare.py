"""Tests for sweep comparison (repro.analysis.compare)."""

import math

import pytest

from repro.analysis import SweepResult, compare_sweeps


def sweep(name_values: dict[str, list[tuple[float, float]]]) -> SweepResult:
    s = SweepResult("t", "x", "y")
    for name, points in name_values.items():
        for x, y in points:
            s.add(name, x, y)
    return s


class TestCompareSweeps:
    def test_identical_sweeps_ratio_one(self):
        a = sweep({"s": [(1, 10), (2, 20)]})
        comparisons = compare_sweeps(a, a)
        assert len(comparisons) == 1
        c = comparisons[0]
        assert c.ratios == (1.0, 1.0)
        assert c.mean_ratio == 1.0
        assert c.within_factor(1.0)

    def test_ratio_computation(self):
        a = sweep({"s": [(1, 10), (2, 20)]})
        b = sweep({"s": [(1, 20), (2, 30)]})
        c = compare_sweeps(a, b)[0]
        assert c.ratios == (2.0, 1.5)
        assert c.mean_ratio == pytest.approx(1.75)
        assert c.within_factor(2.0)
        assert not c.within_factor(1.9)

    def test_symmetric_factor(self):
        a = sweep({"s": [(1, 10)]})
        b = sweep({"s": [(1, 5)]})
        c = compare_sweeps(a, b)[0]
        assert c.within_factor(2.0)
        assert not c.within_factor(1.5)

    def test_zero_left_values(self):
        a = sweep({"s": [(1, 0), (2, 0)]})
        b = sweep({"s": [(1, 0), (2, 5)]})
        c = compare_sweeps(a, b)[0]
        assert c.ratios[0] == 1.0
        assert math.isnan(c.ratios[1])
        assert not c.within_factor(100.0)

    def test_explicit_series_mapping(self):
        a = sweep({"fluid": [(1, 4)]})
        b = sweep({"des": [(1, 5)]})
        c = compare_sweeps(a, b, series={"fluid": "des"})[0]
        assert c.ratios == (1.25,)

    def test_shared_grid_only(self):
        a = sweep({"s": [(1, 10), (2, 20), (3, 30)]})
        b = sweep({"s": [(2, 22), (3, 33), (4, 44)]})
        c = compare_sweeps(a, b)[0]
        assert c.xs == (2.0, 3.0)

    def test_no_common_series_raises(self):
        with pytest.raises(ValueError):
            compare_sweeps(sweep({"a": [(1, 1)]}), sweep({"b": [(1, 1)]}))

    def test_no_common_xs_raises(self):
        with pytest.raises(ValueError):
            compare_sweeps(sweep({"s": [(1, 1)]}), sweep({"s": [(2, 1)]}))

    def test_bad_factor_rejected(self):
        c = compare_sweeps(sweep({"s": [(1, 1)]}), sweep({"s": [(1, 1)]}))[0]
        with pytest.raises(ValueError):
            c.within_factor(0.5)


class TestCompareEngines:
    def test_fluid_vs_des_via_compare(self):
        from repro.experiments.extensions import engine_agreement

        result = engine_agreement(m=6, rates=(800.0,), duration=8.0)
        fluid = SweepResult("f", "x", "y", {"v": result.series["fluid"]})
        des = SweepResult("d", "x", "y", {"v": result.series["des"]})
        comparison = compare_sweeps(fluid, des)[0]
        assert comparison.within_factor(2.5)
