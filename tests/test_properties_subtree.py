"""Property-based tests (hypothesis) for the §4 subtree decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import NoLiveNodeError
from repro.core.liveness import SetLiveness
from repro.core.subtree import (
    SubtreeView,
    insert_targets,
    migration_order,
    split_vid,
    subtree_of_pid,
)
from repro.core.tree import LookupTree


@st.composite
def tree_b_liveness(draw):
    m = draw(st.integers(min_value=2, max_value=7))
    b = draw(st.integers(min_value=0, max_value=m - 1))
    r = draw(st.integers(min_value=0, max_value=(1 << m) - 1))
    n = 1 << m
    live = draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
    )
    return LookupTree(r, m), b, SetLiveness(m, live)


class TestPartitionLaws:
    @given(tree_b_liveness())
    @settings(max_examples=60, deadline=None)
    def test_subtrees_partition_the_space(self, setup):
        tree, b, _ = setup
        seen: list[int] = []
        for sid in range(1 << b):
            members = SubtreeView(tree, b, sid).members()
            assert len(members) == 1 << (tree.m - b)
            seen.extend(members)
        assert sorted(seen) == list(range(1 << tree.m))

    @given(tree_b_liveness())
    @settings(max_examples=60, deadline=None)
    def test_subtree_of_pid_consistent_with_views(self, setup):
        tree, b, _ = setup
        for pid in range(1 << tree.m):
            sid = subtree_of_pid(tree, pid, b)
            assert SubtreeView(tree, b, sid).contains(pid)

    @given(tree_b_liveness())
    @settings(max_examples=60, deadline=None)
    def test_split_vid_reassembles(self, setup):
        tree, b, _ = setup
        for vid in range(1 << tree.m):
            svid, sid = split_vid(vid, tree.m, b)
            assert (svid << b) | sid == vid


class TestRoutingLaws:
    @given(tree_b_liveness())
    @settings(max_examples=60, deadline=None)
    def test_routes_confined_to_subtree(self, setup):
        tree, b, liveness = setup
        for sid in range(1 << b):
            view = SubtreeView(tree, b, sid)
            for entry in view.members():
                if not liveness.is_live(entry):
                    continue
                try:
                    route = view.resolve_route(entry, liveness)
                except NoLiveNodeError:
                    continue
                assert all(view.contains(p) for p in route)
                assert all(liveness.is_live(p) for p in route)
                assert len(route) == len(set(route))

    @given(tree_b_liveness())
    @settings(max_examples=60, deadline=None)
    def test_routes_end_at_subtree_storage_node(self, setup):
        tree, b, liveness = setup
        for sid in range(1 << b):
            view = SubtreeView(tree, b, sid)
            try:
                home = view.storage_node(liveness)
            except NoLiveNodeError:
                continue
            for entry in view.members():
                if liveness.is_live(entry):
                    assert view.resolve_route(entry, liveness)[-1] == home


class TestInsertTargetLaws:
    @given(tree_b_liveness())
    @settings(max_examples=60, deadline=None)
    def test_one_target_per_nonempty_subtree(self, setup):
        tree, b, liveness = setup
        targets = insert_targets(tree, b, liveness)
        nonempty = sum(
            1
            for sid in range(1 << b)
            if SubtreeView(tree, b, sid).live_count(liveness) > 0
        )
        assert len(targets) == nonempty
        assert len({subtree_of_pid(tree, t, b) for t in targets}) == len(targets)
        assert all(liveness.is_live(t) for t in targets)

    @given(tree_b_liveness())
    @settings(max_examples=60, deadline=None)
    def test_targets_have_max_svid_among_live(self, setup):
        tree, b, liveness = setup
        for target in insert_targets(tree, b, liveness):
            sid = subtree_of_pid(tree, target, b)
            view = SubtreeView(tree, b, sid)
            live_svids = [
                view.svid_of(p) for p in view.members() if liveness.is_live(p)
            ]
            assert view.svid_of(target) == max(live_svids)


class TestMigrationOrderLaws:
    @given(tree_b_liveness())
    @settings(max_examples=60, deadline=None)
    def test_order_is_a_permutation_starting_home(self, setup):
        tree, b, _ = setup
        for entry in range(1 << tree.m):
            order = migration_order(tree, b, entry)
            assert sorted(order) == list(range(1 << b))
            assert order[0] == subtree_of_pid(tree, entry, b)
