"""Tests for the live asyncio runtime (``repro.runtime``).

Fast, timer-free pieces (the wire codec, its property tests, and one
small sequential conformance smoke) run in tier-1.  Tests that boot
full clusters with real timers and bursts carry the ``runtime`` marker
and run via ``pytest -m runtime`` (CI's dedicated smoke job).
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.message import Message, MessageKind
from repro.runtime import (
    LiveCluster,
    LoadGenerator,
    RuntimeClient,
    RuntimeConfig,
    WorkloadShape,
    WorkloadSpec,
    diff_states,
    percentile,
    replay_oplog,
    run_conformance,
)
from repro.runtime.wire import (
    HEADER,
    MAGIC,
    FrameError,
    WireDecodeError,
    decode_message,
    encode_message,
    message_from_dict,
    message_to_dict,
    read_message,
)

# ---------------------------------------------------------------------------
# wire codec: round trips
# ---------------------------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
    st.binary(max_size=40),
)
json_payloads = st.recursive(
    json_scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=10), inner, max_size=4),
    ),
    max_leaves=12,
)
messages = st.builds(
    Message,
    kind=st.sampled_from(list(MessageKind)),
    src=st.integers(min_value=-2, max_value=2**31 - 1),
    dst=st.integers(min_value=-2, max_value=2**31 - 1),
    file=st.text(max_size=60),
    payload=json_payloads,
    version=st.integers(min_value=0, max_value=2**31 - 1),
    hops=st.integers(min_value=0, max_value=1000),
    origin=st.integers(min_value=-1, max_value=2**31 - 1),
    request_id=st.integers(min_value=0, max_value=2**31 - 1),
)


def _tuples_to_lists(value):
    if isinstance(value, tuple):
        return [_tuples_to_lists(v) for v in value]
    if isinstance(value, list):
        return [_tuples_to_lists(v) for v in value]
    if isinstance(value, dict):
        return {k: _tuples_to_lists(v) for k, v in value.items()}
    return value


class TestWireRoundTrip:
    @settings(max_examples=120)
    @given(messages)
    def test_encode_decode_is_identity(self, msg):
        assert decode_message(encode_message(msg)) == msg

    @settings(max_examples=60)
    @given(messages)
    def test_dict_form_is_json_object(self, msg):
        data = message_to_dict(msg)
        assert isinstance(data, dict)
        assert message_from_dict(data) == msg

    def test_tuple_payload_round_trips_as_list(self):
        msg = Message(kind=MessageKind.GET, src=0, dst=1, payload=(1, (2, 3)))
        decoded = decode_message(encode_message(msg))
        assert decoded.payload == [1, [2, 3]]

    def test_bytes_payload_survives(self):
        blob = bytes(range(256))
        msg = Message(kind=MessageKind.INSERT, src=-1, dst=3, file="x",
                      payload={"data": blob})
        assert decode_message(encode_message(msg)).payload == {"data": blob}

    @settings(max_examples=60)
    @given(messages)
    def test_stream_read_matches_direct_decode(self, msg):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_message(msg))
            reader.feed_eof()
            return await read_message(reader)

        assert asyncio.run(run()) == msg


# ---------------------------------------------------------------------------
# wire codec: hardening against corrupt frames
# ---------------------------------------------------------------------------

class TestWireHardening:
    def _frame(self, **kwargs):
        return encode_message(
            Message(kind=MessageKind.GET, src=0, dst=1, file="f", **kwargs)
        )

    def test_bad_magic_is_a_frame_error(self):
        frame = b"XX" + self._frame()[2:]
        with pytest.raises(FrameError, match="magic"):
            decode_message(frame)

    def test_unknown_wire_version_is_a_frame_error(self):
        frame = self._frame()
        frame = frame[:2] + bytes([99]) + frame[3:]
        with pytest.raises(FrameError, match="version"):
            decode_message(frame)

    def test_oversized_length_is_a_frame_error(self):
        header = HEADER.pack(MAGIC, 1, 0, 1 << 30)
        with pytest.raises(FrameError, match="exceeds"):
            decode_message(header)

    def test_truncated_header_is_a_frame_error(self):
        with pytest.raises(FrameError, match="truncated"):
            decode_message(self._frame()[:5])

    def test_truncated_body_is_a_frame_error(self):
        with pytest.raises(FrameError, match="does not match"):
            decode_message(self._frame()[:-3])

    def test_garbage_json_is_a_decode_error(self):
        body = b"{nope"
        frame = HEADER.pack(MAGIC, 1, 0, len(body)) + body
        with pytest.raises(WireDecodeError, match="malformed"):
            decode_message(frame)

    def test_non_object_body_is_a_decode_error(self):
        body = b"[1,2,3]"
        frame = HEADER.pack(MAGIC, 1, 0, len(body)) + body
        with pytest.raises(WireDecodeError, match="object"):
            decode_message(frame)

    def test_unknown_kind_is_a_decode_error(self):
        data = message_to_dict(Message(kind=MessageKind.GET, src=0, dst=1))
        data["kind"] = "teleport"
        with pytest.raises(WireDecodeError, match="unknown message kind"):
            message_from_dict(data)

    def test_wrongly_typed_field_is_a_decode_error(self):
        data = message_to_dict(Message(kind=MessageKind.GET, src=0, dst=1))
        data["version"] = "seven"
        with pytest.raises(WireDecodeError, match="integer"):
            message_from_dict(data)

    def test_missing_src_dst_is_a_decode_error(self):
        with pytest.raises(WireDecodeError, match="src"):
            message_from_dict({"kind": "get", "file": "x"})

    def test_bad_base64_tag_is_a_decode_error(self):
        data = message_to_dict(Message(kind=MessageKind.GET, src=0, dst=1))
        data["payload"] = {"__b64__": "!!not-base64!!"}
        with pytest.raises(WireDecodeError, match="base64"):
            message_from_dict(data)

    @settings(max_examples=80)
    @given(st.binary(min_size=0, max_size=64))
    def test_random_bytes_never_crash_the_decoder(self, blob):
        try:
            decode_message(blob)
        except (FrameError, WireDecodeError):
            pass  # precise rejection is the contract; crashing is not

    def test_mid_frame_eof_on_stream_is_a_frame_error(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(self._frame()[:-2])
            reader.feed_eof()
            with pytest.raises(FrameError, match="mid-body"):
                await read_message(reader)

        asyncio.run(run())

    def test_clean_eof_on_stream_is_eoferror(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            with pytest.raises(EOFError):
                await read_message(reader)

        asyncio.run(run())


def test_percentile_interpolates():
    assert percentile([], 0.5) == 0.0
    assert percentile([5.0], 0.99) == 5.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
    assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0


# ---------------------------------------------------------------------------
# tier-1 conformance smoke: one small scenario, both models
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("b", [0, 1])
def test_conformance_smoke(b):
    spec = WorkloadSpec(m=3, b=b, seed=0, files=3, ops=12)
    report = asyncio.run(run_conformance(spec))
    assert report.ok, report.render()
    assert report.files == 3


# ---------------------------------------------------------------------------
# live-cluster tests (runtime marker: real timers, bursts, TCP)
# ---------------------------------------------------------------------------

@pytest.mark.runtime
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("b", [0, 1])
def test_oracle_conformance_across_seeds(seed, b):
    """ISSUE acceptance: >= 3 seeds, both §3 and §4 models."""
    spec = WorkloadSpec(m=4, b=b, seed=seed, files=5, ops=30)
    report = asyncio.run(run_conformance(spec))
    assert report.ok, report.render()


@pytest.mark.runtime
def test_live_cluster_serves_seeded_burst():
    async def run():
        config = RuntimeConfig(
            m=4, b=1, seed=17, capacity=25.0, service_time=0.001,
            inflight_limit=8,
        )
        cluster = await LiveCluster.start(config)
        try:
            files = [f"burst-{i}" for i in range(5)]
            boot = await RuntimeClient(cluster, 2).connect()
            for name in files:
                await boot.insert(name, name.upper())
            await boot.close()
            await cluster.drain()
            gen = LoadGenerator(
                cluster, files, WorkloadShape(kind="zipf", s=1.5), seed=17
            )
            report = await gen.run_open_loop(rps=300, duration=1.0)
            await gen.close()
            await cluster.quiesce()
            assert report.timeouts == 0
            assert report.completed >= 0.99 * report.requests
            assert report.p99 < 1.0
            served = sum(report.served_by_node.values())
            assert served >= report.completed
            assert cluster.replicas_created() > 0
            system = replay_oplog(cluster.oplog, config, cluster.initial_live)
            system.check_invariants()
            conformance = diff_states(cluster, system)
            assert conformance.ok, conformance.render()
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_silent_crash_is_discovered_and_rerouted():
    """§3 FINDLIVENODE at the message level: a GET mid-flight hits an
    unannounced dead node; the sender discovers the death through the
    failed send, marks it in its own word, and reroutes."""

    async def run():
        config = RuntimeConfig(m=4, b=0, seed=5)
        cluster = await LiveCluster.start(config)
        try:
            boot = await RuntimeClient(cluster, 0).connect()
            insert = await boot.insert("target.dat", "precious")
            await boot.close()
            await cluster.drain()
            homes = insert.payload["homes"]
            home = homes[0]
            tree = cluster.tree(cluster.psi("target.dat"))
            # Entry whose first routing hop is a live non-holder.
            from repro.core.routing import first_alive_ancestor

            entry = hop = None
            for pid in sorted(cluster.nodes):
                if pid == home:
                    continue
                nxt = first_alive_ancestor(tree, pid, cluster.word)
                if nxt is not None and nxt != home:
                    entry, hop = pid, nxt
                    break
            assert entry is not None, "topology has no 2-hop route"
            # The intermediate dies silently: no REGISTER_DEAD circulates.
            await cluster.crash(hop, announce=False)
            assert cluster.nodes[entry].word.is_live(hop)  # still believed live
            client = await RuntimeClient(cluster, entry).connect()
            outcome = await client.get("target.dat", timeout=5.0)
            await client.close()
            assert outcome.ok, outcome
            assert outcome.payload == "precious"
            # The failed send taught the entry node about the death.
            assert not cluster.nodes[entry].word.is_live(hop)
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_corrupt_frame_does_not_kill_the_connection():
    """Decode hardening end to end: a malformed body on a live peer
    connection is counted and skipped; the next frame still serves."""

    async def run():
        cluster = await LiveCluster.start(RuntimeConfig(m=3, b=0, seed=1))
        try:
            boot = await RuntimeClient(cluster, 0).connect()
            await boot.insert("ok.dat", "fine")
            await cluster.drain()
            # Hand-deliver a well-framed but bogus body on the same wire.
            from repro.runtime.wire import HEADER as H, MAGIC as MG

            body = b'{"kind": "teleport"}'
            assert boot._writer is not None
            boot._writer.write(H.pack(MG, 1, 0, len(body)) + body)
            await boot._writer.drain()
            outcome = await boot.get("ok.dat")
            assert outcome.ok and outcome.payload == "fine"
            assert cluster.counters.get("wire_decode_errors", 0) >= 1
            await boot.close()
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_tcp_loopback_serves_the_same_protocol():
    async def run():
        cluster = await LiveCluster.start(
            RuntimeConfig(m=3, b=1, seed=2, tcp=True)
        )
        try:
            assert len(cluster.addresses) == len(cluster.nodes)
            client = await RuntimeClient(cluster, 4).connect()
            await client.insert("tcp.dat", b"\x00\x01binary\xff")
            got = await client.get("tcp.dat")
            assert got.ok and got.payload == b"\x00\x01binary\xff"
            upd = await client.update("tcp.dat", b"v2")
            assert upd.version == 2
            got = await client.get("tcp.dat")
            assert got.version == 2 and got.payload == b"v2"
            await client.close()
            await cluster.quiesce()
            system = replay_oplog(
                cluster.oplog, cluster.config, cluster.initial_live
            )
            assert diff_states(cluster, system).ok
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_churn_over_the_wire_matches_oracle():
    """Join / leave / crash driven as messages end in oracle state."""

    async def run():
        config = RuntimeConfig(m=4, b=1, seed=13)
        cluster = await LiveCluster.start(config)
        try:
            boot = await RuntimeClient(cluster, 1).connect()
            for i in range(6):
                await boot.insert(f"c-{i}", f"v:{i}")
            await boot.close()
            await cluster.drain()
            await cluster.leave(3)
            await cluster.crash(10)
            await cluster.join(3)
            await cluster.quiesce()
            system = replay_oplog(cluster.oplog, config, cluster.initial_live)
            system.check_invariants()
            report = diff_states(cluster, system)
            assert report.ok, report.render()
        finally:
            await cluster.shutdown()

    asyncio.run(run())
