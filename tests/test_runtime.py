"""Tests for the live asyncio runtime (``repro.runtime``).

Fast, timer-free pieces (the wire codec, its property tests, and one
small sequential conformance smoke) run in tier-1.  Tests that boot
full clusters with real timers and bursts carry the ``runtime`` marker
and run via ``pytest -m runtime`` (CI's dedicated smoke job).
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.message import Message, MessageKind
from repro.runtime import (
    LiveCluster,
    LoadGenerator,
    RuntimeClient,
    RuntimeConfig,
    WorkloadShape,
    WorkloadSpec,
    diff_states,
    percentile,
    replay_oplog,
    run_conformance,
)
from repro.runtime import LatencyHistogram
from repro.runtime.wire import (
    FRAME_ACK,
    FRAME_GENERIC,
    FRAME_GET,
    FRAME_GET_REPLY,
    FRAME_OVERLOAD,
    HEADER,
    MAGIC,
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    FrameEncoder,
    FrameError,
    FrameReader,
    WireDecodeError,
    WireError,
    decode_message,
    encode_message,
    message_from_dict,
    message_to_dict,
    read_frame,
    read_message,
)

# ---------------------------------------------------------------------------
# wire codec: round trips
# ---------------------------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
    st.binary(max_size=40),
)
json_payloads = st.recursive(
    json_scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=10), inner, max_size=4),
    ),
    max_leaves=12,
)
messages = st.builds(
    Message,
    kind=st.sampled_from(list(MessageKind)),
    src=st.integers(min_value=-2, max_value=2**31 - 1),
    dst=st.integers(min_value=-2, max_value=2**31 - 1),
    file=st.text(max_size=60),
    payload=json_payloads,
    version=st.integers(min_value=0, max_value=2**31 - 1),
    hops=st.integers(min_value=0, max_value=1000),
    origin=st.integers(min_value=-1, max_value=2**31 - 1),
    request_id=st.integers(min_value=0, max_value=2**31 - 1),
)


def _tuples_to_lists(value):
    if isinstance(value, tuple):
        return [_tuples_to_lists(v) for v in value]
    if isinstance(value, list):
        return [_tuples_to_lists(v) for v in value]
    if isinstance(value, dict):
        return {k: _tuples_to_lists(v) for k, v in value.items()}
    return value


class TestWireRoundTrip:
    @settings(max_examples=120)
    @given(messages)
    def test_encode_decode_is_identity(self, msg):
        assert decode_message(encode_message(msg)) == msg

    @settings(max_examples=60)
    @given(messages)
    def test_dict_form_is_json_object(self, msg):
        data = message_to_dict(msg)
        assert isinstance(data, dict)
        assert message_from_dict(data) == msg

    def test_tuple_payload_round_trips_as_list(self):
        msg = Message(kind=MessageKind.GET, src=0, dst=1, payload=(1, (2, 3)))
        decoded = decode_message(encode_message(msg))
        assert decoded.payload == [1, [2, 3]]

    def test_bytes_payload_survives(self):
        blob = bytes(range(256))
        msg = Message(kind=MessageKind.INSERT, src=-1, dst=3, file="x",
                      payload={"data": blob})
        assert decode_message(encode_message(msg)).payload == {"data": blob}

    @settings(max_examples=60)
    @given(messages)
    def test_stream_read_matches_direct_decode(self, msg):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_message(msg))
            reader.feed_eof()
            return await read_message(reader)

        assert asyncio.run(run()) == msg


# ---------------------------------------------------------------------------
# binary codec (v2): equivalence with v1 and negotiation
# ---------------------------------------------------------------------------

class TestBinaryCodec:
    @settings(max_examples=120)
    @given(messages)
    def test_binary_encode_decode_is_identity(self, msg):
        assert decode_message(encode_message(msg, WIRE_VERSION_BINARY)) == msg

    @settings(max_examples=80)
    @given(messages)
    def test_codecs_decode_to_the_same_message(self, msg):
        via_json = decode_message(encode_message(msg, WIRE_VERSION))
        via_binary = decode_message(encode_message(msg, WIRE_VERSION_BINARY))
        assert via_json == via_binary

    @pytest.mark.parametrize("kind", list(MessageKind))
    def test_every_kind_round_trips_through_both_codecs(self, kind):
        msg = Message(
            kind=kind, src=3, dst=12, file="every-kind.dat",
            payload={"n": [1, 2.5, None, b"\x00\xff"], "s": "text"},
            version=4, hops=2, origin=3, request_id=991,
        )
        for version in (WIRE_VERSION, WIRE_VERSION_BINARY):
            assert decode_message(encode_message(msg, version)) == msg

    def test_binary_tuple_payload_round_trips_as_list(self):
        msg = Message(kind=MessageKind.GET, src=0, dst=1, payload=(1, (2, 3)))
        decoded = decode_message(encode_message(msg, WIRE_VERSION_BINARY))
        assert decoded.payload == [1, [2, 3]]

    def test_binary_is_smaller_for_runtime_shaped_messages(self):
        msg = Message(
            kind=MessageKind.GET_REPLY, src=3, dst=9, file="bench-00.dat",
            payload={"payload": "x" * 64, "server": 3},
            version=4, hops=3, origin=9, request_id=12345,
        )
        small = encode_message(msg, WIRE_VERSION_BINARY)
        big = encode_message(msg, WIRE_VERSION)
        assert len(small) < len(big)

    def test_huge_int_payload_round_trips(self):
        msg = Message(kind=MessageKind.ACK, src=0, dst=1,
                      payload={"big": 1 << 200, "neg": -(1 << 200)})
        assert decode_message(encode_message(msg, WIRE_VERSION_BINARY)) == msg

    def test_read_frame_reports_the_sender_version(self):
        msg = Message(kind=MessageKind.ACK, src=0, dst=1)

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_message(msg, WIRE_VERSION_BINARY))
            reader.feed_data(encode_message(msg, WIRE_VERSION))
            reader.feed_eof()
            return await read_frame(reader), await read_frame(reader)

        (m1, v1), (m2, v2) = asyncio.run(run())
        assert (m1, v1) == (msg, WIRE_VERSION_BINARY)
        assert (m2, v2) == (msg, WIRE_VERSION)


class TestBinaryHardening:
    def _v2_frame(self, **kwargs):
        # fixed=False: these tests corrupt specific *generic*-codec body
        # offsets, so keep the frame off the fixed-layout fast lane.
        return encode_message(
            Message(kind=MessageKind.GET, src=0, dst=1, file="abc", **kwargs),
            WIRE_VERSION_BINARY,
            fixed=False,
        )

    def _reframe(self, body: bytes) -> bytes:
        return HEADER.pack(MAGIC, WIRE_VERSION_BINARY, 0, len(body)) + body

    def test_v1_only_receiver_rejects_v2_at_the_framing_layer(self):
        with pytest.raises(FrameError, match="version"):
            decode_message(self._v2_frame(), max_version=WIRE_VERSION)

    def test_v1_only_stream_reader_rejects_v2_frames(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(self._v2_frame())
            reader.feed_eof()
            with pytest.raises(FrameError, match="version"):
                await read_frame(reader, max_version=WIRE_VERSION)

        asyncio.run(run())

    def test_unknown_kind_code_is_a_decode_error(self):
        body = bytearray(self._v2_frame()[HEADER.size:])
        body[0] = 200
        with pytest.raises(WireDecodeError, match="kind code"):
            decode_message(self._reframe(bytes(body)))

    def test_truncated_binary_payload_is_a_decode_error(self):
        body = self._v2_frame(payload={"key": "value"})[HEADER.size:-3]
        with pytest.raises(WireDecodeError, match="truncated"):
            decode_message(self._reframe(body))

    def test_unknown_payload_tag_is_a_decode_error(self):
        body = bytearray(self._v2_frame(payload=None)[HEADER.size:])
        body[-1] = 250  # the payload's single tag byte
        with pytest.raises(WireDecodeError, match="unknown binary payload tag"):
            decode_message(self._reframe(bytes(body)))

    def test_bad_utf8_file_name_is_a_decode_error(self):
        body = bytearray(self._v2_frame()[HEADER.size:])
        body[-4:-1] = b"\xff\xfe\xfd"  # the 3 name bytes precede the tag
        with pytest.raises(WireDecodeError, match="UTF-8"):
            decode_message(self._reframe(bytes(body)))

    def test_trailing_bytes_are_a_decode_error(self):
        body = self._v2_frame(payload=None)[HEADER.size:] + b"\x00"
        with pytest.raises(WireDecodeError, match="trailing"):
            decode_message(self._reframe(body))

    @settings(max_examples=80)
    @given(st.binary(min_size=0, max_size=64))
    def test_random_binary_bodies_never_crash_the_decoder(self, blob):
        try:
            decode_message(self._reframe(blob))
        except (FrameError, WireDecodeError):
            pass  # precise rejection is the contract; crashing is not


# ---------------------------------------------------------------------------
# fixed-layout fast lane: equivalence with generic v2, hardening
# ---------------------------------------------------------------------------

_i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)

fixed_gets_and_acks = st.builds(
    Message,
    kind=st.sampled_from([MessageKind.GET, MessageKind.ACK]),
    src=_i64, dst=_i64, file=st.text(max_size=40),
    payload=st.none(),
    version=_i64, hops=_i64, origin=_i64, request_id=_i64,
)
fixed_routed_gets = st.builds(
    Message,
    kind=st.just(MessageKind.GET),
    src=_i64, dst=_i64, file=st.text(max_size=40),
    payload=st.lists(
        st.integers(min_value=0, max_value=255), min_size=1, max_size=16
    ),
    version=_i64, hops=_i64, origin=_i64, request_id=_i64,
)
fixed_replies = st.builds(
    Message,
    kind=st.just(MessageKind.GET_REPLY),
    src=_i64, dst=_i64, file=st.text(max_size=40),
    payload=st.fixed_dictionaries({
        "payload": st.one_of(
            st.none(), st.text(max_size=40), st.binary(max_size=40)
        ),
        "server": _i64,
    }),
    version=_i64, hops=_i64, origin=_i64, request_id=_i64,
)
fixed_overloads = st.builds(
    Message,
    kind=st.just(MessageKind.OVERLOAD),
    src=_i64, dst=_i64, file=st.text(max_size=40),
    payload=st.fixed_dictionaries({
        "shed_by": _i64,
        "redirect": _i64,
    }),
    version=_i64, hops=_i64, origin=_i64, request_id=_i64,
)
fixed_eligible = st.one_of(
    fixed_gets_and_acks, fixed_routed_gets, fixed_replies, fixed_overloads
)

_FLAG_FOR_KIND = {
    MessageKind.GET: FRAME_GET,
    MessageKind.ACK: FRAME_ACK,
    MessageKind.GET_REPLY: FRAME_GET_REPLY,
    MessageKind.OVERLOAD: FRAME_OVERLOAD,
}


class TestFixedLayouts:
    """The struct-packed GET/ACK/GET_REPLY lane inside wire v2."""

    def _fixed_reframe(self, flags: int, body: bytes) -> bytes:
        return HEADER.pack(MAGIC, WIRE_VERSION_BINARY, flags, len(body)) + body

    @settings(max_examples=120)
    @given(fixed_eligible)
    def test_fixed_decodes_identical_to_generic_v2(self, msg):
        generic = encode_message(msg, WIRE_VERSION_BINARY, fixed=False)
        fixed = encode_message(msg, WIRE_VERSION_BINARY)
        assert fixed[3] == _FLAG_FOR_KIND[msg.kind]  # the lane is taken
        assert generic[3] == FRAME_GENERIC
        assert decode_message(fixed) == decode_message(generic) == msg

    @settings(max_examples=80)
    @given(fixed_eligible)
    def test_fixed_is_never_larger_than_generic(self, msg):
        fixed = encode_message(msg, WIRE_VERSION_BINARY)
        generic = encode_message(msg, WIRE_VERSION_BINARY, fixed=False)
        assert len(fixed) <= len(generic)

    @pytest.mark.parametrize("msg", [
        Message(kind=MessageKind.GET, src=0, dst=1, payload={"x": 1}),
        Message(kind=MessageKind.GET, src=0, dst=1, payload=[]),
        Message(kind=MessageKind.GET, src=0, dst=1, payload=[256]),
        Message(kind=MessageKind.GET, src=0, dst=1, payload=[1, "a"]),
        Message(kind=MessageKind.ACK, src=0, dst=1, payload=[1]),
        Message(kind=MessageKind.ACK, src=0, dst=1, payload={}),
        Message(kind=MessageKind.GET_REPLY, src=0, dst=1,
                payload={"payload": None}),
        Message(kind=MessageKind.GET_REPLY, src=0, dst=1,
                payload={"payload": None, "server": True}),
        Message(kind=MessageKind.GET_REPLY, src=0, dst=1,
                payload={"payload": None, "server": 1 << 70}),
        Message(kind=MessageKind.GET_REPLY, src=0, dst=1,
                payload={"payload": 7, "server": 1}),
        Message(kind=MessageKind.INSERT, src=0, dst=1, payload=None),
        Message(kind=MessageKind.OVERLOAD, src=0, dst=1, payload=None),
        Message(kind=MessageKind.OVERLOAD, src=0, dst=1, payload={}),
        Message(kind=MessageKind.OVERLOAD, src=0, dst=1,
                payload={"shed_by": 2}),
        Message(kind=MessageKind.OVERLOAD, src=0, dst=1,
                payload={"shed_by": 2, "redirect": 3, "extra": 0}),
        Message(kind=MessageKind.OVERLOAD, src=0, dst=1,
                payload={"shed_by": True, "redirect": 3}),
        Message(kind=MessageKind.OVERLOAD, src=0, dst=1,
                payload={"shed_by": 2, "redirect": "n3"}),
        Message(kind=MessageKind.OVERLOAD, src=0, dst=1,
                payload={"shed_by": 2, "redirect": 1 << 70}),
    ])
    def test_ineligible_messages_fall_back_to_generic(self, msg):
        frame = encode_message(msg, WIRE_VERSION_BINARY)
        assert frame[3] == FRAME_GENERIC
        assert decode_message(frame) == msg

    def test_bool_subtree_ids_coerce_to_equal_ints(self):
        # bytes() validates the trailer at C speed; bools ride through
        # as their int value, which compares equal end to end.
        msg = Message(kind=MessageKind.GET, src=0, dst=1, payload=[True, 0])
        frame = encode_message(msg, WIRE_VERSION_BINARY)
        assert frame[3] == FRAME_GET
        decoded = decode_message(frame)
        assert decoded == msg and decoded.payload == [1, 0]

    def test_v1_frames_carry_no_fixed_layouts(self):
        msg = Message(kind=MessageKind.GET, src=0, dst=1, file="f")
        body = encode_message(msg, WIRE_VERSION)[HEADER.size:]
        frame = HEADER.pack(MAGIC, WIRE_VERSION, FRAME_GET, len(body)) + body
        with pytest.raises(WireDecodeError, match="v1 frames carry no fixed"):
            decode_message(frame)

    def test_truncated_fixed_body_is_a_decode_error(self):
        with pytest.raises(WireDecodeError, match="too short"):
            decode_message(self._fixed_reframe(FRAME_GET, b"\x00" * 8))

    def test_truncated_overload_body_is_a_decode_error(self):
        with pytest.raises(WireDecodeError, match="OVERLOAD.*too short"):
            decode_message(self._fixed_reframe(FRAME_OVERLOAD, b"\x00" * 16))

    def test_overload_trailing_bytes_are_a_decode_error(self):
        msg = Message(kind=MessageKind.OVERLOAD, src=0, dst=1, file="f",
                      payload={"shed_by": 4, "redirect": -1})
        body = encode_message(msg, WIRE_VERSION_BINARY)[HEADER.size:]
        with pytest.raises(WireDecodeError, match="trailing.*OVERLOAD"):
            decode_message(self._fixed_reframe(FRAME_OVERLOAD, body + b"\x00"))

    @settings(max_examples=80)
    @given(fixed_overloads)
    def test_overload_round_trips_on_both_codecs(self, msg):
        # v2 takes the fixed lane; v1 carries the same payload as JSON.
        v2 = encode_message(msg, WIRE_VERSION_BINARY)
        assert v2[3] == FRAME_OVERLOAD
        v1 = encode_message(msg, WIRE_VERSION)
        assert v1[3] == FRAME_GENERIC
        assert decode_message(v2) == decode_message(v1) == msg

    def test_ack_trailing_bytes_are_a_decode_error(self):
        msg = Message(kind=MessageKind.ACK, src=0, dst=1, file="f")
        body = encode_message(msg, WIRE_VERSION_BINARY)[HEADER.size:]
        with pytest.raises(WireDecodeError, match="trailing"):
            decode_message(self._fixed_reframe(FRAME_ACK, body + b"\x00"))

    def test_bad_subtree_trailer_is_a_decode_error(self):
        msg = Message(kind=MessageKind.GET, src=0, dst=1, file="f",
                      payload=[1, 2])
        body = bytearray(encode_message(msg, WIRE_VERSION_BINARY)[HEADER.size:])
        body[-3] = 9  # count byte claims 9 ids; only 2 follow
        with pytest.raises(WireDecodeError, match="subtree trailer"):
            decode_message(self._fixed_reframe(FRAME_GET, bytes(body)))

    def test_unknown_reply_payload_kind_is_a_decode_error(self):
        msg = Message(kind=MessageKind.GET_REPLY, src=0, dst=1, file="f",
                      payload={"payload": None, "server": 2})
        body = bytearray(encode_message(msg, WIRE_VERSION_BINARY)[HEADER.size:])
        body[-5] = 77  # the value-kind byte before the u32 length
        with pytest.raises(WireDecodeError, match="payload kind"):
            decode_message(self._fixed_reframe(FRAME_GET_REPLY, bytes(body)))

    def test_reply_none_payload_with_bytes_is_a_decode_error(self):
        msg = Message(kind=MessageKind.GET_REPLY, src=0, dst=1, file="f",
                      payload={"payload": b"x", "server": 2})
        body = bytearray(encode_message(msg, WIRE_VERSION_BINARY)[HEADER.size:])
        body[-6] = 0  # retag the 1-byte payload as None, bytes still follow
        with pytest.raises(WireDecodeError, match="carries bytes"):
            decode_message(self._fixed_reframe(FRAME_GET_REPLY, bytes(body)))

    @settings(max_examples=80)
    @given(st.integers(min_value=1, max_value=4),
           st.binary(min_size=0, max_size=64))
    def test_random_fixed_bodies_never_crash_the_decoder(self, flags, blob):
        try:
            decode_message(self._fixed_reframe(flags, blob))
        except (FrameError, WireDecodeError):
            pass


# ---------------------------------------------------------------------------
# zero-copy frame encoder / reader: buffer reuse and hardening
# ---------------------------------------------------------------------------

class TestFrameEncoder:
    def test_views_match_per_message_encodes(self):
        msgs = [
            Message(kind=MessageKind.GET, src=0, dst=i, file=f"f-{i}")
            for i in range(5)
        ]
        enc = FrameEncoder()
        for m in msgs:
            enc.add(m, WIRE_VERSION_BINARY)
        assert enc.pending == 5
        views = enc.views()
        singles = [encode_message(m, WIRE_VERSION_BINARY) for m in msgs]
        assert [bytes(v) for v in views] == singles
        for v in views:
            v.release()

    def test_rejected_message_rolls_back_the_buffer(self):
        good = Message(kind=MessageKind.GET, src=0, dst=1, file="ok")
        bad = Message(kind=MessageKind.INSERT, src=0, dst=1,
                      payload={"obj": object()})
        enc = FrameEncoder()
        enc.add(good, WIRE_VERSION_BINARY)
        with pytest.raises(WireError):
            enc.add(bad, WIRE_VERSION_BINARY)
        assert enc.pending == 1  # the bad frame left no partial bytes
        enc.add(good, WIRE_VERSION_BINARY)
        blob = enc.take_bytes()
        assert blob == encode_message(good, WIRE_VERSION_BINARY) * 2

    def test_encoder_is_reusable_after_flush(self):
        msg = Message(kind=MessageKind.ACK, src=0, dst=1, file="f")
        enc = FrameEncoder()
        enc.add(msg, WIRE_VERSION_BINARY)
        first = enc.take_bytes()
        assert enc.pending == 0 and enc.pending_bytes == 0
        enc.add(msg, WIRE_VERSION_BINARY)
        assert enc.take_bytes() == first


class TestFrameReader:
    def _drain(self, blob: bytes, chunk: int):
        """Feed ``blob`` in ``chunk``-sized slices; decode to exhaustion."""

        async def run():
            reader = asyncio.StreamReader()
            for i in range(0, len(blob), chunk):
                reader.feed_data(blob[i:i + chunk])
            reader.feed_eof()
            frames = FrameReader(reader)
            out, errors = [], 0
            try:
                while True:
                    msgs, errs = await frames.read_batch()
                    out.extend(m for m, _v in msgs)
                    errors += errs
            except EOFError:
                return out, errors

        return asyncio.run(run())

    @settings(max_examples=40)
    @given(st.lists(messages, min_size=1, max_size=6),
           st.integers(min_value=1, max_value=64))
    def test_batch_decode_survives_any_chunking(self, msgs, chunk):
        blob = b"".join(encode_message(m, WIRE_VERSION_BINARY) for m in msgs)
        out, errors = self._drain(blob, chunk)
        assert out == msgs and errors == 0

    def test_corrupt_body_is_counted_and_skipped(self):
        msgs = [
            Message(kind=MessageKind.GET, src=0, dst=i, file=f"f-{i}")
            for i in range(3)
        ]
        frames = [
            bytearray(encode_message(m, WIRE_VERSION_BINARY, fixed=False))
            for m in msgs
        ]
        frames[1][-1] = 250  # the payload's single tag byte: unknown tag
        out, errors = self._drain(b"".join(bytes(f) for f in frames), chunk=7)
        assert out == [msgs[0], msgs[2]] and errors == 1

    def test_corrupt_overload_body_is_counted_and_skipped(self):
        before = Message(kind=MessageKind.GET, src=0, dst=1, file="a")
        bad = Message(kind=MessageKind.OVERLOAD, src=2, dst=1, file="b",
                      payload={"shed_by": 2, "redirect": 5})
        after = Message(kind=MessageKind.GET, src=0, dst=3, file="c")
        frames = [
            bytearray(encode_message(m, WIRE_VERSION_BINARY))
            for m in (before, bad, after)
        ]
        assert frames[1][3] == FRAME_OVERLOAD
        frames[1].append(0)  # trailing byte after the fixed body
        frames[1][4:8] = len(frames[1][HEADER.size:]).to_bytes(4, "big")
        out, errors = self._drain(b"".join(bytes(f) for f in frames), chunk=9)
        assert out == [before, after] and errors == 1

    def test_mid_frame_truncation_is_a_frame_error(self):
        blob = encode_message(
            Message(kind=MessageKind.GET, src=0, dst=1, file="f"),
            WIRE_VERSION_BINARY,
        )[:-2]
        with pytest.raises(FrameError, match="mid-frame"):
            self._drain(blob, chunk=5)

    def test_decoded_messages_never_alias_the_reuse_buffer(self):
        first = Message(kind=MessageKind.GET_REPLY, src=0, dst=1, file="a",
                        payload={"payload": b"\x01" * 32, "server": 7})
        second = Message(kind=MessageKind.GET_REPLY, src=0, dst=1, file="b",
                         payload={"payload": b"\xff" * 32, "server": 8})

        async def run():
            stream = asyncio.StreamReader()
            frames = FrameReader(stream)
            stream.feed_data(encode_message(first, WIRE_VERSION_BINARY))
            batch1, _ = await frames.read_batch()
            # The second batch recycles the reader's internal buffer,
            # overwriting the bytes the first decode sliced from.
            stream.feed_data(encode_message(second, WIRE_VERSION_BINARY))
            batch2, _ = await frames.read_batch()
            return batch1[0][0], batch2[0][0]

        got_first, got_second = asyncio.run(run())
        assert got_first == first  # still intact: leaves were copied out
        assert got_second == second


# ---------------------------------------------------------------------------
# latency histograms and shape distance
# ---------------------------------------------------------------------------

class TestLatencyHistogram:
    def test_round_trips_through_dict_form(self):
        hist = LatencyHistogram()
        for latency in (0.0005, 0.004, 0.004, 0.25, 9999.0):
            hist.record(latency)
        assert hist.total == 5
        data = hist.as_dict()
        import json as _json
        _json.dumps(data)  # strict JSON: the overflow bound must not leak inf
        back = LatencyHistogram.from_dict(data)
        assert back.counts == hist.counts and back.total == hist.total
        assert hist.shape_distance(back) == 0.0

    def test_shift_increases_distance(self):
        base, shifted, far = (LatencyHistogram() for _ in range(3))
        for _ in range(100):
            base.record(0.004)
            shifted.record(0.008)
            far.record(0.064)
        assert base.shape_distance(base) == 0.0
        d_near = base.shape_distance(shifted)
        d_far = base.shape_distance(far)
        assert 0.0 < d_near < d_far
        assert base.shape_distance(shifted) == shifted.shape_distance(base)

    def test_empty_histogram_distance_is_infinite(self):
        empty, full = LatencyHistogram(), LatencyHistogram()
        full.record(0.01)
        assert empty.shape_distance(full) == float("inf")
        assert full.shape_distance(empty) == float("inf")

    def test_extreme_latencies_land_in_end_buckets(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        hist.record(1e9)
        assert hist.total == 2
        assert hist.counts[0] == 1 and hist.counts[-1] == 1


# ---------------------------------------------------------------------------
# wire codec: hardening against corrupt frames
# ---------------------------------------------------------------------------

class TestWireHardening:
    def _frame(self, **kwargs):
        return encode_message(
            Message(kind=MessageKind.GET, src=0, dst=1, file="f", **kwargs)
        )

    def test_bad_magic_is_a_frame_error(self):
        frame = b"XX" + self._frame()[2:]
        with pytest.raises(FrameError, match="magic"):
            decode_message(frame)

    def test_unknown_wire_version_is_a_frame_error(self):
        frame = self._frame()
        frame = frame[:2] + bytes([99]) + frame[3:]
        with pytest.raises(FrameError, match="version"):
            decode_message(frame)

    def test_oversized_length_is_a_frame_error(self):
        header = HEADER.pack(MAGIC, 1, 0, 1 << 30)
        with pytest.raises(FrameError, match="exceeds"):
            decode_message(header)

    def test_truncated_header_is_a_frame_error(self):
        with pytest.raises(FrameError, match="truncated"):
            decode_message(self._frame()[:5])

    def test_truncated_body_is_a_frame_error(self):
        with pytest.raises(FrameError, match="does not match"):
            decode_message(self._frame()[:-3])

    def test_garbage_json_is_a_decode_error(self):
        body = b"{nope"
        frame = HEADER.pack(MAGIC, 1, 0, len(body)) + body
        with pytest.raises(WireDecodeError, match="malformed"):
            decode_message(frame)

    def test_non_object_body_is_a_decode_error(self):
        body = b"[1,2,3]"
        frame = HEADER.pack(MAGIC, 1, 0, len(body)) + body
        with pytest.raises(WireDecodeError, match="object"):
            decode_message(frame)

    def test_unknown_kind_is_a_decode_error(self):
        data = message_to_dict(Message(kind=MessageKind.GET, src=0, dst=1))
        data["kind"] = "teleport"
        with pytest.raises(WireDecodeError, match="unknown message kind"):
            message_from_dict(data)

    def test_wrongly_typed_field_is_a_decode_error(self):
        data = message_to_dict(Message(kind=MessageKind.GET, src=0, dst=1))
        data["version"] = "seven"
        with pytest.raises(WireDecodeError, match="integer"):
            message_from_dict(data)

    def test_missing_src_dst_is_a_decode_error(self):
        with pytest.raises(WireDecodeError, match="src"):
            message_from_dict({"kind": "get", "file": "x"})

    def test_bad_base64_tag_is_a_decode_error(self):
        data = message_to_dict(Message(kind=MessageKind.GET, src=0, dst=1))
        data["payload"] = {"__b64__": "!!not-base64!!"}
        with pytest.raises(WireDecodeError, match="base64"):
            message_from_dict(data)

    @settings(max_examples=80)
    @given(st.binary(min_size=0, max_size=64))
    def test_random_bytes_never_crash_the_decoder(self, blob):
        try:
            decode_message(blob)
        except (FrameError, WireDecodeError):
            pass  # precise rejection is the contract; crashing is not

    def test_mid_frame_eof_on_stream_is_a_frame_error(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(self._frame()[:-2])
            reader.feed_eof()
            with pytest.raises(FrameError, match="mid-body"):
                await read_message(reader)

        asyncio.run(run())

    def test_clean_eof_on_stream_is_eoferror(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            with pytest.raises(EOFError):
                await read_message(reader)

        asyncio.run(run())


def test_percentile_interpolates():
    assert percentile([], 0.5) == 0.0
    assert percentile([5.0], 0.99) == 5.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
    assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0


class TestLoadReportQuantiles:
    """p50/p99 come from one ``statistics.quantiles`` pass, not two
    full sorts per property access — and must agree with the reference
    :func:`percentile` interpolation."""

    def _report(self, latencies):
        from repro.runtime.client import LoadReport

        return LoadReport(
            requests=len(latencies), completed=len(latencies),
            duration=1.0, latencies=list(latencies),
        )

    @settings(max_examples=60)
    @given(st.lists(st.floats(min_value=1e-6, max_value=10.0), max_size=200))
    def test_quantiles_match_reference_percentile(self, latencies):
        report = self._report(latencies)
        assert report.p50 == pytest.approx(percentile(latencies, 0.50))
        assert report.p99 == pytest.approx(percentile(latencies, 0.99))

    def test_cache_invalidates_when_samples_arrive(self):
        report = self._report([1.0, 2.0, 3.0])
        first = report.p99
        report.latencies.extend([100.0] * 50)
        assert report.p99 > first

    def test_empty_and_singleton_reports(self):
        assert self._report([]).p50 == 0.0
        assert self._report([]).p99 == 0.0
        assert self._report([0.25]).p50 == 0.25
        assert self._report([0.25]).p99 == 0.25


# ---------------------------------------------------------------------------
# tier-1 conformance smoke: one small scenario, both models
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("b", [0, 1])
def test_conformance_smoke(b):
    spec = WorkloadSpec(m=3, b=b, seed=0, files=3, ops=12)
    report = asyncio.run(run_conformance(spec))
    assert report.ok, report.render()
    assert report.files == 3


# ---------------------------------------------------------------------------
# live-cluster tests (runtime marker: real timers, bursts, TCP)
# ---------------------------------------------------------------------------

@pytest.mark.runtime
@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("b", [0, 1])
def test_oracle_conformance_across_seeds(seed, b):
    """ISSUE acceptance: >= 3 seeds, both §3 and §4 models."""
    spec = WorkloadSpec(m=4, b=b, seed=seed, files=5, ops=30)
    report = asyncio.run(run_conformance(spec))
    assert report.ok, report.render()


@pytest.mark.runtime
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_mixed_codec_cluster_matches_oracle(seed):
    """A cluster where some nodes are pinned to the JSON-v1 codec and
    the rest run binary-v2 negotiates per link and still replays
    conformant against the oracle (ISSUE acceptance: 3 seeds)."""
    spec = WorkloadSpec(m=4, b=1, seed=seed, files=5, ops=30)
    config = RuntimeConfig(m=4, b=1, seed=seed, v1_pids=(0, 5, 9))
    report = asyncio.run(run_conformance(spec, config=config))
    assert report.ok, report.render()


@pytest.mark.runtime
def test_coalesced_batched_cluster_matches_oracle():
    """Frame coalescing plus deep inbox batching change scheduling, not
    outcomes: the oracle replay still agrees."""
    spec = WorkloadSpec(m=4, b=1, seed=3, files=5, ops=30)
    config = RuntimeConfig(
        m=4, b=1, seed=3, coalesce_bytes=4096, coalesce_delay=0.002,
        batch_max=32,
    )
    report = asyncio.run(run_conformance(spec, config=config))
    assert report.ok, report.render()


def test_conformance_rejects_mismatched_config():
    from repro.core.errors import ConfigurationError

    spec = WorkloadSpec(m=4, b=1, seed=3, files=2, ops=4)
    config = RuntimeConfig(m=4, b=1, seed=4)
    with pytest.raises(ConfigurationError):
        asyncio.run(run_conformance(spec, config=config))


@pytest.mark.runtime
def test_idle_replica_decays_with_conformant_removal():
    """Counter-based removal, live: replicas whose access counters sit
    still past ``idle_timeout`` are REMOVEd via the wire, the decision
    lands in the oplog, and the oracle replay (which drives
    ``remove_replica``) agrees with the final placement."""

    async def run():
        config = RuntimeConfig(
            m=4, b=1, seed=21, capacity=25.0, service_time=0.001,
            inflight_limit=8, idle_timeout=0.25,
        )
        cluster = await LiveCluster.start(config)
        try:
            files = [f"cold-{i}" for i in range(4)]
            boot = await RuntimeClient(cluster, 0).connect()
            for name in files:
                await boot.insert(name, name)
            await boot.close()
            await cluster.drain()
            gen = LoadGenerator(
                cluster, files, WorkloadShape(kind="zipf", s=1.5), seed=21
            )
            await gen.run_open_loop(rps=300, duration=1.0)
            await gen.close()
            assert cluster.replicas_created() > 0, "burst never replicated"
            # Traffic stops; counters freeze; decay kicks in at the
            # sweep after idle_timeout.
            deadline = asyncio.get_running_loop().time() + 3.0
            while not any(rec.kind == "remove" for rec in cluster.oplog):
                assert asyncio.get_running_loop().time() < deadline, \
                    "no idle replica decayed within 3s"
                await asyncio.sleep(0.05)
            await cluster.quiesce()
            removes = [rec for rec in cluster.oplog if rec.kind == "remove"]
            assert removes
            system = replay_oplog(cluster.oplog, config, cluster.initial_live)
            system.check_invariants()
            report = diff_states(cluster, system)
            assert report.ok, report.render()
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_live_cluster_serves_seeded_burst():
    async def run():
        config = RuntimeConfig(
            m=4, b=1, seed=17, capacity=25.0, service_time=0.001,
            inflight_limit=8,
        )
        cluster = await LiveCluster.start(config)
        try:
            files = [f"burst-{i}" for i in range(5)]
            boot = await RuntimeClient(cluster, 2).connect()
            for name in files:
                await boot.insert(name, name.upper())
            await boot.close()
            await cluster.drain()
            gen = LoadGenerator(
                cluster, files, WorkloadShape(kind="zipf", s=1.5), seed=17
            )
            report = await gen.run_open_loop(rps=300, duration=1.0)
            await gen.close()
            await cluster.quiesce()
            assert report.timeouts == 0
            assert report.completed >= 0.99 * report.requests
            assert report.p99 < 1.0
            served = sum(report.served_by_node.values())
            assert served >= report.completed
            assert cluster.replicas_created() > 0
            system = replay_oplog(cluster.oplog, config, cluster.initial_live)
            system.check_invariants()
            conformance = diff_states(cluster, system)
            assert conformance.ok, conformance.render()
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_silent_crash_is_discovered_and_rerouted():
    """§3 FINDLIVENODE at the message level: a GET mid-flight hits an
    unannounced dead node; the sender discovers the death through the
    failed send, marks it in its own word, and reroutes."""

    async def run():
        config = RuntimeConfig(m=4, b=0, seed=5)
        cluster = await LiveCluster.start(config)
        try:
            boot = await RuntimeClient(cluster, 0).connect()
            insert = await boot.insert("target.dat", "precious")
            await boot.close()
            await cluster.drain()
            homes = insert.payload["homes"]
            home = homes[0]
            tree = cluster.tree(cluster.psi("target.dat"))
            # Entry whose first routing hop is a live non-holder.
            from repro.core.routing import first_alive_ancestor

            entry = hop = None
            for pid in sorted(cluster.nodes):
                if pid == home:
                    continue
                nxt = first_alive_ancestor(tree, pid, cluster.word)
                if nxt is not None and nxt != home:
                    entry, hop = pid, nxt
                    break
            assert entry is not None, "topology has no 2-hop route"
            # The intermediate dies silently: no REGISTER_DEAD circulates.
            await cluster.crash(hop, announce=False)
            assert cluster.nodes[entry].word.is_live(hop)  # still believed live
            client = await RuntimeClient(cluster, entry).connect()
            outcome = await client.get("target.dat", timeout=5.0)
            await client.close()
            assert outcome.ok, outcome
            assert outcome.payload == "precious"
            # The failed send taught the entry node about the death.
            assert not cluster.nodes[entry].word.is_live(hop)
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_corrupt_frame_does_not_kill_the_connection():
    """Decode hardening end to end: a malformed body on a live peer
    connection is counted and skipped; the next frame still serves."""

    async def run():
        cluster = await LiveCluster.start(RuntimeConfig(m=3, b=0, seed=1))
        try:
            boot = await RuntimeClient(cluster, 0).connect()
            await boot.insert("ok.dat", "fine")
            await cluster.drain()
            # Hand-deliver a well-framed but bogus body on the same wire.
            from repro.runtime.wire import HEADER as H, MAGIC as MG

            body = b'{"kind": "teleport"}'
            assert boot._writer is not None
            boot._writer.write(H.pack(MG, 1, 0, len(body)) + body)
            await boot._writer.drain()
            outcome = await boot.get("ok.dat")
            assert outcome.ok and outcome.payload == "fine"
            assert cluster.counters.get("wire_decode_errors", 0) >= 1
            await boot.close()
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_tcp_loopback_serves_the_same_protocol():
    async def run():
        cluster = await LiveCluster.start(
            RuntimeConfig(m=3, b=1, seed=2, tcp=True)
        )
        try:
            assert len(cluster.addresses) == len(cluster.nodes)
            client = await RuntimeClient(cluster, 4).connect()
            await client.insert("tcp.dat", b"\x00\x01binary\xff")
            got = await client.get("tcp.dat")
            assert got.ok and got.payload == b"\x00\x01binary\xff"
            upd = await client.update("tcp.dat", b"v2")
            assert upd.version == 2
            got = await client.get("tcp.dat")
            assert got.version == 2 and got.payload == b"v2"
            await client.close()
            await cluster.quiesce()
            system = replay_oplog(
                cluster.oplog, cluster.config, cluster.initial_live
            )
            assert diff_states(cluster, system).ok
        finally:
            await cluster.shutdown()

    asyncio.run(run())


@pytest.mark.runtime
def test_churn_over_the_wire_matches_oracle():
    """Join / leave / crash driven as messages end in oracle state."""

    async def run():
        config = RuntimeConfig(m=4, b=1, seed=13)
        cluster = await LiveCluster.start(config)
        try:
            boot = await RuntimeClient(cluster, 1).connect()
            for i in range(6):
                await boot.insert(f"c-{i}", f"v:{i}")
            await boot.close()
            await cluster.drain()
            await cluster.leave(3)
            await cluster.crash(10)
            await cluster.join(3)
            await cluster.quiesce()
            system = replay_oplog(cluster.oplog, config, cluster.initial_live)
            system.check_invariants()
            report = diff_states(cluster, system)
            assert report.ok, report.render()
        finally:
            await cluster.shutdown()

    asyncio.run(run())
