"""Documentation accuracy: the README's code actually runs.

Extracts the quickstart code block from README.md and executes it, so
the very first thing a new user tries can never silently rot.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_key_sections(self):
        text = README.read_text()
        for heading in ("## Install", "## Quickstart", "## Architecture",
                        "## Reproducing the paper"):
            assert heading in text

    def test_quickstart_block_executes(self):
        blocks = python_blocks(README.read_text())
        assert blocks, "README has no python code block"
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)
        # The block builds a system and leaves it consistent.
        system = namespace.get("system")
        assert system is not None
        system.check_invariants()

    def test_claimed_cli_commands_exist(self):
        from repro.cli import build_parser

        text = README.read_text()
        parser = build_parser()
        subcommands = {"demo", "tree", "experiments", "run", "report",
                       "audit", "snapshot-demo", "figures"}
        for cmd in subcommands:
            if f"lesslog {cmd}" in text:
                # parse_args would SystemExit(2) on unknown commands.
                assert cmd in str(parser.format_help())

    def test_experiment_ids_mentioned_in_docs_are_real(self):
        from repro.experiments import list_experiments

        known = set(list_experiments())
        experiments_md = (README.parent / "EXPERIMENTS.md").read_text()
        for mentioned in re.findall(r"\b(fig\d|ext-[a-z]+|abl-[a-z]+)\b",
                                    experiments_md):
            assert mentioned in known, f"{mentioned} documented but not registered"


class TestDesignDoc:
    def test_design_lists_every_registered_experiment(self):
        from repro.experiments import list_experiments

        design = (README.parent / "DESIGN.md").read_text()
        for experiment_id in list_experiments():
            if experiment_id in ("ext-decay", "ext-gossip", "ext-hetero",
                                 "ext-scale"):
                continue  # newer studies documented in their own rows
            assert experiment_id in design, f"{experiment_id} missing from DESIGN.md"

    def test_paper_mapping_modules_exist(self):
        import importlib

        mapping = (README.parent / "docs" / "paper_mapping.md").read_text()
        for module in set(re.findall(r"`(core|cluster|engine|node|workloads|baselines|experiments|analysis)\.[a-z_]+`", mapping)):
            pass  # pattern sanity only; full check below
        for match in set(re.findall(r"`repro\.[a-z_.]+`", mapping)):
            name = match.strip("`")
            importlib.import_module(name)
