"""Edge-case tests across the stack: guards, degenerate sizes, limits."""

import pytest

from repro.cluster import ChurnSchedule, LessLogSystem
from repro.core.errors import ConfigurationError, SimulationError
from repro.core.liveness import SetLiveness
from repro.core.tree import LookupTree, VirtualTree
from repro.sim import Engine


class TestMinimalSystems:
    def test_m1_system_works(self):
        # Two identifiers: the smallest legal system.
        system = LessLogSystem.build(m=1)
        system.insert("f", payload=1)
        for entry in (0, 1):
            assert system.get("f", entry=entry).payload == 1
        system.check_invariants()

    def test_m1_tree_structure(self):
        tree = LookupTree(0, 1)
        assert tree.children(0) == [1]
        assert tree.path_to_root(1) == [1, 0]
        VirtualTree(1).validate()

    def test_single_live_node_system(self):
        system = LessLogSystem(m=3, live={5})
        system.insert("f", payload="x")
        assert system.holders_of("f") == [5]
        assert system.get("f", entry=5).payload == "x"

    def test_single_node_cannot_leave(self):
        system = LessLogSystem(m=3, live={5})
        system.insert("f")
        system.leave(5)
        # The last copy is gone and the file is recorded lost.
        assert "f" in system.faults

    def test_b_equal_m_minus_one(self):
        # Subtrees of size 2: the most extreme legal split.
        system = LessLogSystem.build(m=3, b=2)
        result = system.insert("f", payload=0)
        assert len(result.homes) == 4
        system.check_invariants()


class TestEngineGuards:
    def test_reentrant_run_rejected(self):
        engine = Engine()

        def recurse():
            engine.run()

        engine.schedule(0.0, recurse)
        with pytest.raises(SimulationError):
            engine.run()

    def test_reentrant_run_until_rejected(self):
        engine = Engine()

        def recurse():
            engine.run_until(10.0)

        engine.schedule(0.0, recurse)
        with pytest.raises(SimulationError):
            engine.run_until(5.0)


class TestChurnScheduleEdges:
    def test_zero_rate_is_empty(self):
        system = LessLogSystem.build(m=4)
        schedule = ChurnSchedule.generate(system, duration=100.0, rate=0.0)
        assert len(schedule) == 0
        assert schedule.apply_all(system) == 0

    def test_negative_parameters_rejected(self):
        system = LessLogSystem.build(m=4)
        with pytest.raises(ConfigurationError):
            ChurnSchedule.generate(system, duration=-1.0, rate=1.0)
        with pytest.raises(ConfigurationError):
            ChurnSchedule.generate(system, duration=1.0, rate=-1.0)

    def test_join_only_weights(self):
        system = LessLogSystem.build(m=4, n_live=4, seed=0)
        schedule = ChurnSchedule.generate(
            system, duration=50.0, rate=1.0, weights=(1.0, 0.0, 0.0), seed=1
        )
        from repro.cluster import ChurnKind

        assert all(e.kind is ChurnKind.JOIN for e in schedule)
        schedule.apply_all(system)
        assert system.n_live > 4

    def test_fail_only_never_empties(self):
        system = LessLogSystem.build(m=4, n_live=3, seed=0)
        schedule = ChurnSchedule.generate(
            system, duration=500.0, rate=1.0, weights=(0.0, 0.0, 1.0), seed=2
        )
        schedule.apply_all(system)
        assert system.n_live >= 1

    def test_pending_shrinks_as_applied(self):
        system = LessLogSystem.build(m=4)
        schedule = ChurnSchedule.generate(system, duration=30.0, rate=1.0, seed=3)
        if not len(schedule):
            pytest.skip("seeded schedule happened to be empty")
        before = len(schedule.pending())
        mid = schedule.events[len(schedule.events) // 2].time
        schedule.apply_until(system, mid)
        assert len(schedule.pending()) < before


class TestDegenerateDemand:
    def test_zero_total_rate_uniform(self):
        from repro.core.liveness import AllLive
        from repro.workloads import UniformDemand

        rates = UniformDemand().rates(0.0, AllLive(4))
        assert rates.sum() == 0.0

    def test_fluid_with_zero_demand_is_trivially_balanced(self):
        import numpy as np

        from repro.baselines import LessLogPolicy
        from repro.engine.fluid import FluidSimulation

        liveness = SetLiveness(4, range(16))
        sim = FluidSimulation(
            LookupTree(4, 4), liveness, np.zeros(16), capacity=1.0
        )
        result = sim.balance(LessLogPolicy())
        assert result.replicas_created == 0 and result.balanced


class TestLargeWidthGuards:
    def test_width_over_limit_rejected(self):
        with pytest.raises(ValueError):
            LookupTree(0, 31)

    def test_width_30_tree_operations_ok(self):
        # Construction and O(1)/O(m) ops must work even at the cap
        # (no materialisation of the 2^30 space).
        tree = LookupTree(123_456_789 % (1 << 30), 30)
        pid = 42
        assert tree.pid_of(tree.vid_of(pid)) == pid
        assert len(tree.path_to_root(pid)) <= 31
