"""Unit tests for the CAN comparator (repro.baselines.can)."""

import pytest

from repro.baselines import CanGrid
from repro.core.errors import ConfigurationError, NoLiveNodeError


class TestCoordinates:
    def test_roundtrip(self):
        grid = CanGrid(2, 8)
        for node in range(64):
            assert grid.node_at(grid.coords_of(node)) == node

    def test_out_of_range_node(self):
        with pytest.raises(NoLiveNodeError):
            CanGrid(2, 4).coords_of(16)

    def test_bad_coords(self):
        grid = CanGrid(2, 4)
        with pytest.raises(ConfigurationError):
            grid.node_at((0,))
        with pytest.raises(ConfigurationError):
            grid.node_at((0, 9))

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            CanGrid(0, 4)
        with pytest.raises(ConfigurationError):
            CanGrid(2, 0)
        with pytest.raises(ConfigurationError):
            CanGrid(3, 1 << 10)

    def test_key_owner_deterministic_and_in_range(self):
        grid = CanGrid(2, 16)
        assert grid.key_owner("x") == grid.key_owner("x")
        for i in range(50):
            assert 0 <= grid.key_owner(f"k{i}") < grid.n


class TestRouting:
    def test_path_reaches_owner(self):
        grid = CanGrid(2, 16)
        for start in range(0, 256, 17):
            path = grid.lookup_path(start, "file")
            assert path[0] == start
            assert path[-1] == grid.key_owner("file")

    def test_hops_equal_torus_distance(self):
        grid = CanGrid(2, 16)
        owner = grid.key_owner("file")
        for start in range(0, 256, 13):
            assert grid.lookup_hops(start, "file") == grid.torus_distance(
                start, owner
            )

    def test_self_lookup_zero_hops(self):
        grid = CanGrid(2, 8)
        owner = grid.key_owner("f")
        assert grid.lookup_hops(owner, "f") == 0

    def test_hops_bounded_by_torus_diameter(self):
        grid = CanGrid(2, 16)
        bound = 2 * (16 // 2)
        for start in range(0, 256, 11):
            assert grid.lookup_hops(start, "f") <= bound

    def test_3d_grid(self):
        grid = CanGrid(3, 4)
        assert grid.n == 64
        for start in range(0, 64, 7):
            path = grid.lookup_path(start, "f")
            assert path[-1] == grid.key_owner("f")
            assert len(path) - 1 <= 3 * 2

    def test_mean_hops_scale_as_sqrt_n(self):
        # (d/4) * N^(1/d) for d=2: doubling side doubles the mean.
        small = CanGrid(2, 8)
        large = CanGrid(2, 32)
        keys = [f"k{i}" for i in range(40)]
        mean_small = sum(
            small.lookup_hops(s % small.n, k) for s, k in enumerate(keys)
        ) / len(keys)
        mean_large = sum(
            large.lookup_hops((s * 37) % large.n, k) for s, k in enumerate(keys)
        ) / len(keys)
        assert mean_large > 2.0 * mean_small


class TestLookupStudyWithCan:
    def test_can_series_present_and_worse_than_lesslog(self):
        from repro.experiments.extensions import lookup_path_lengths

        result = lookup_path_lengths(widths=(8, 10), samples=60)
        for m in (8, 10):
            n = 1 << m
            assert result.value("can(d=2) mean", n) > result.value(
                "lesslog mean", n
            )
