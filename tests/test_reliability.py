"""The request-reliability layer (repro.net.reliability).

Covers the tracker's unit-level lifecycle (deadlines, retry/backoff,
reroute, dead letters, stale replies), the scenario harness's
``reliable_workload`` op, seed stability of the whole retry schedule,
and the DES driver integration — including the acceptance scenario:
a 20%-lossy transport reaches 100% GET completion with retries while
the identical run without retries provably loses requests.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError, SimulationError
from repro.engine.des_driver import DesExperiment
from repro.experiments.config import ReliabilityConfig
from repro.net import (
    Message,
    MessageKind,
    RequestTracker,
    RetryPolicy,
    Transport,
)
from repro.sim import Engine, Tracer
from repro.verify.scenario import Scenario, ScenarioEvent, ScenarioHarness

CLIENT = -1
SERVER = 5


def snapshot_equal(a: dict, b: dict) -> bool:
    """Metric snapshots compare NaN-safely (empty histograms mean NaN)."""
    if a.keys() != b.keys():
        return False
    for key in a:
        x, y = a[key], b[key]
        if isinstance(x, float) and math.isnan(x):
            if not (isinstance(y, float) and math.isnan(y)):
                return False
        elif x != y:
            return False
    return True


class TestRetryPolicy:
    def test_defaults_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"max_attempts": 0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_backoff_schedule_is_exponential(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_factor=2.0)
        assert policy.backoff(1) == 0.05
        assert policy.backoff(2) == 0.10
        assert policy.backoff(3) == 0.20


class _Rig:
    """Engine + transport + tracker with a reply-completing client edge."""

    def __init__(self, policy: RetryPolicy, seed: int = 0):
        self.engine = Engine()
        self.tracer = Tracer()
        self.transport = Transport(self.engine, tracer=self.tracer)
        self.tracker = RequestTracker(
            self.engine, policy, metrics=self.transport.metrics,
            tracer=self.tracer, seed=seed,
        )
        self.transport.register(
            CLIENT, lambda msg: self.tracker.complete(msg.request_id)
        )

    def serve(self, message: Message) -> None:
        self.transport.send(message.reply(MessageKind.GET_REPLY))

    def issue(self, dst: int = SERVER, **kwargs) -> Message:
        message = Message(MessageKind.GET, src=CLIENT, dst=dst, file="f")
        self.tracker.issue(message, send=self.transport.send, **kwargs)
        return message


class TestRequestTracker:
    def test_completes_without_retry(self):
        rig = _Rig(RetryPolicy(timeout=0.25, max_attempts=3, jitter=0.0))
        rig.transport.register(SERVER, rig.serve)
        message = rig.issue()
        rig.engine.run()
        assert rig.tracker.completed == 1
        assert rig.tracker.inflight_count == 0
        assert rig.tracker.expired == 0
        assert message.request_id in rig.tracker.completed_ids
        # The cancelled deadline must not fire later as a retry/expiry.
        assert rig.transport.metrics.counter("request.retried").value == 0
        assert not rig.tracker.dead_letters

    def test_retry_after_timeout_then_completes(self):
        # Attempt 1 drops dead (no handler); the server comes up just
        # before the deterministic retry at timeout + backoff = 0.30s.
        rig = _Rig(RetryPolicy(
            timeout=0.25, max_attempts=3, backoff_base=0.05, jitter=0.0,
        ))
        rig.engine.schedule(
            0.29, lambda: rig.transport.register(SERVER, rig.serve)
        )
        message = rig.issue()
        rig.engine.run()
        metrics = rig.transport.metrics
        assert metrics.counter("request.retried").value == 1
        assert rig.tracker.completed == 1
        assert not rig.tracker.dead_letters
        retries = rig.tracer.of_kind("retry")
        assert len(retries) == 1
        assert retries[0].data["request_id"] == message.request_id
        assert retries[0].data["attempt"] == 2
        # Attempt histogram saw the final count of 2 sends.
        assert metrics.histogram("request.attempts").mean() == 2.0

    def test_budget_exhaustion_dead_letters_with_history(self):
        rig = _Rig(RetryPolicy(
            timeout=0.1, max_attempts=3, backoff_base=0.01, jitter=0.0,
        ))
        message = rig.issue()  # SERVER never registered: every send drops
        rig.engine.run()
        assert rig.tracker.completed == 0
        assert rig.tracker.expired == 1
        assert rig.tracker.inflight_count == 0
        [letter] = rig.tracker.dead_letters
        assert letter.request_id == message.request_id
        assert letter.kind == "get" and letter.file == "f"
        assert letter.budget == 3
        assert [a.number for a in letter.attempts] == [1, 2, 3]
        assert all(a.entry == SERVER for a in letter.attempts)
        assert letter.first_sent == 0.0
        assert letter.expired_at > letter.attempts[-1].sent_at
        [expire] = rig.tracer.of_kind("expire")
        assert expire.data["attempts"] == 3

    def test_reroute_redirects_retries(self):
        other = SERVER + 1
        rig = _Rig(RetryPolicy(
            timeout=0.1, max_attempts=3, backoff_base=0.01, jitter=0.0,
        ))
        rig.transport.register(other, rig.serve)
        rig.issue(reroute=lambda entry: other)
        rig.engine.run()
        assert rig.tracker.completed == 1
        assert rig.transport.metrics.counter("request.rerouted").value == 1
        [retry] = rig.tracer.of_kind("retry")
        assert retry.data["entry"] == other

    def test_reroute_none_expires_before_budget(self):
        rig = _Rig(RetryPolicy(timeout=0.1, max_attempts=5, jitter=0.0))
        rig.issue(reroute=lambda entry: None)
        rig.engine.run()
        [letter] = rig.tracker.dead_letters
        assert len(letter.attempts) == 1  # no live entry: expire at once
        assert rig.tracker.expired == 1
        assert rig.transport.metrics.counter("request.retried").value == 0

    def test_stale_reply_counted_not_crashed(self):
        rig = _Rig(RetryPolicy(timeout=0.25, jitter=0.0))
        rig.transport.register(SERVER, rig.serve)
        message = rig.issue()
        rig.engine.run()
        assert rig.tracker.complete(message.request_id) is False
        assert (
            rig.transport.metrics.counter("request.stale_replies").value == 1
        )
        assert rig.tracker.completed == 1  # not double-counted

    def test_duplicate_issue_rejected(self):
        rig = _Rig(RetryPolicy())
        message = rig.issue()
        with pytest.raises(SimulationError, match="already being tracked"):
            rig.tracker.issue(message, send=rig.transport.send)

    def test_conservation_holds_at_every_instant(self):
        rig = _Rig(RetryPolicy(
            timeout=0.1, max_attempts=2, backoff_base=0.01, jitter=0.0,
        ))
        rig.transport.register(SERVER, rig.serve)
        for dst in (SERVER, SERVER, 99, 99):  # two complete, two expire
            rig.issue(dst=dst)
        while rig.engine.pending:
            rig.engine.run_until(rig.engine.now + 0.05)
            tracker = rig.tracker
            assert tracker.issued == (
                tracker.completed
                + tracker.inflight_count
                + len(tracker.dead_letters)
            )
        assert rig.tracker.completed == 2
        assert len(rig.tracker.dead_letters) == 2

    def test_jitter_deterministic_per_seed(self):
        def expiry_times(seed):
            rig = _Rig(
                RetryPolicy(timeout=0.1, max_attempts=4, jitter=0.5),
                seed=seed,
            )
            for _ in range(3):
                rig.issue()
            rig.engine.run()
            return [letter.expired_at for letter in rig.tracker.dead_letters]

        assert expiry_times(7) == expiry_times(7)
        assert expiry_times(7) != expiry_times(8)


class _ShedRig(_Rig):
    """A rig whose client edge understands OVERLOAD replies and whose
    servers can refuse work with a redirect hint — the DES mirror of
    the live runtime's bounded-inbox shed path."""

    def __init__(self, policy: RetryPolicy, seed: int = 0):
        super().__init__(policy, seed)
        self.transport.register(CLIENT, self._edge)

    def _edge(self, message: Message) -> None:
        if message.kind is MessageKind.OVERLOAD:
            payload = message.payload if isinstance(message.payload, dict) else {}
            self.tracker.on_overload(
                message.request_id, redirect=payload.get("redirect")
            )
        else:
            self.tracker.complete(message.request_id)

    def shedder(self, pid: int, redirect: int):
        def handle(message: Message) -> None:
            self.transport.send(message.reply(
                MessageKind.OVERLOAD,
                payload={"shed_by": pid, "redirect": redirect},
            ))

        return handle


class TestOverloadReroute:
    """Reroute-on-OVERLOAD: redirect chains, backoff, terminal sheds."""

    def _policy(self, max_attempts=4):
        return RetryPolicy(timeout=0.25, max_attempts=max_attempts,
                           backoff_base=0.01, jitter=0.0)

    def test_redirect_chain_lands_on_the_live_replica(self):
        # SERVER sheds toward S+1, S+1 sheds toward S+2, S+2 serves: a
        # 3-deep chain that terminates in a completion.
        rig = _ShedRig(self._policy())
        rig.transport.register(SERVER, rig.shedder(SERVER, SERVER + 1))
        rig.transport.register(SERVER + 1, rig.shedder(SERVER + 1, SERVER + 2))
        rig.transport.register(SERVER + 2, rig.serve)
        rig.issue()
        rig.engine.run()
        tracker = rig.tracker
        assert tracker.completed == 1
        assert tracker.inflight_count == 0
        assert tracker.shed == 0 and not tracker.shed_letters
        metrics = rig.transport.metrics
        assert metrics.counter("request.overloads").value == 2
        assert metrics.counter("request.rerouted").value == 2
        assert metrics.counter("request.retried").value == 2
        assert [r.data["entry"] for r in rig.tracer.of_kind("retry")] == [
            SERVER + 1, SERVER + 2,
        ]

    def test_redirect_cycle_terminates_within_budget(self):
        # Two shedders pointing at each other can never serve; the
        # attempt budget bounds the chase and the request ends shed,
        # not hung and not expired.
        rig = _ShedRig(self._policy(max_attempts=3))
        rig.transport.register(SERVER, rig.shedder(SERVER, SERVER + 1))
        rig.transport.register(SERVER + 1, rig.shedder(SERVER + 1, SERVER))
        message = rig.issue()
        rig.engine.run()
        tracker = rig.tracker
        assert tracker.completed == 0 and tracker.expired == 0
        assert tracker.shed == 1 and tracker.inflight_count == 0
        [letter] = tracker.shed_letters
        assert letter.request_id == message.request_id
        assert len(letter.attempts) == 3 == letter.budget
        [shed_trace] = rig.tracer.of_kind("shed")
        assert shed_trace.data["attempts"] == 3
        assert not tracker.dead_letters  # shed is distinct from expiry

    def test_no_redirect_hint_sheds_immediately(self):
        rig = _ShedRig(self._policy(max_attempts=5))
        rig.transport.register(SERVER, rig.shedder(SERVER, -1))
        rig.issue()
        rig.engine.run()
        [letter] = rig.tracker.shed_letters
        assert len(letter.attempts) == 1  # nowhere to go: no retries
        assert rig.transport.metrics.counter("request.retried").value == 0
        assert rig.tracker.shed == 1

    def test_redirect_retry_backs_off_before_resending(self):
        rig = _ShedRig(RetryPolicy(timeout=0.25, max_attempts=2,
                                   backoff_base=0.05, jitter=0.0))
        rig.transport.register(SERVER, rig.shedder(SERVER, SERVER + 1))
        rig.transport.register(SERVER + 1, rig.serve)
        rig.issue()
        rig.engine.run()
        [retry] = rig.tracer.of_kind("retry")
        # Overload reply lands at the transport latency; the retry adds
        # the (un-jittered) backoff on top — never an immediate resend.
        assert retry.time >= 0.05
        assert rig.tracker.completed == 1

    def test_overload_backoff_jitter_is_seed_stable(self):
        def schedule(seed):
            rig = _ShedRig(RetryPolicy(timeout=0.25, max_attempts=4,
                                       backoff_base=0.05, jitter=0.5),
                           seed=seed)
            rig.transport.register(SERVER, rig.shedder(SERVER, SERVER + 1))
            rig.transport.register(SERVER + 1, rig.shedder(SERVER + 1, SERVER))
            for _ in range(3):
                rig.issue()
            rig.engine.run()
            return [
                (r.time, r.data["attempt"], r.data["entry"])
                for r in rig.tracer.of_kind("retry")
            ]

        assert schedule(7), "no retries scheduled — not a real check"
        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_stale_overload_is_counted_not_crashed(self):
        rig = _ShedRig(self._policy())
        rig.transport.register(SERVER, rig.serve)
        message = rig.issue()
        rig.engine.run()
        assert rig.tracker.on_overload(message.request_id, redirect=3) is False
        assert (
            rig.transport.metrics.counter("request.stale_replies").value == 1
        )
        assert rig.tracker.completed == 1  # outcome unchanged

    def test_conservation_includes_the_shed_terminal(self):
        rig = _ShedRig(self._policy(max_attempts=2))
        rig.transport.register(SERVER, rig.serve)
        rig.transport.register(SERVER + 1, rig.shedder(SERVER + 1, -1))
        rig.issue(dst=SERVER)       # completes
        rig.issue(dst=SERVER + 1)   # shed, no redirect
        rig.issue(dst=99)           # drops dead, expires
        while rig.engine.pending:
            rig.engine.run_until(rig.engine.now + 0.05)
            tracker = rig.tracker
            assert tracker.issued == (
                tracker.completed
                + tracker.inflight_count
                + len(tracker.dead_letters)
                + len(tracker.shed_letters)
            )
        assert rig.tracker.completed == 1
        assert len(rig.tracker.dead_letters) == 1
        assert len(rig.tracker.shed_letters) == 1


def run_workload(max_attempts, requests=30, loss=0.2, timeout=0.05, seed=11):
    harness = ScenarioHarness(Scenario(m=4, b=1, seed=3))
    harness.apply(ScenarioEvent("insert", {"file": "f0"}))
    harness.apply(ScenarioEvent("insert", {"file": "f1"}))
    applied = harness.apply(ScenarioEvent("reliable_workload", {
        "requests": requests,
        "loss_rate": loss,
        "max_attempts": max_attempts,
        "timeout": timeout,
        "seed": seed,
    }))
    assert applied
    return harness


class TestReliableWorkloadAcceptance:
    """ISSUE acceptance: loss 0.2 + retries → 100% GET completion; the
    same scenario without retries provably loses requests."""

    def test_lossy_workload_with_retries_completes_fully(self):
        harness = run_workload(max_attempts=10)
        metrics = harness.system.metrics
        assert metrics.counter("request.issued").value == 30
        assert metrics.counter("request.completed").value == 30
        assert metrics.counter("request.retried").value > 0
        assert harness.reliability.dead_letters == []
        assert harness.reliability.inflight_count == 0
        # The loss model genuinely fired: retries exist because sends
        # were dropped, not because the timeout was too tight.
        assert metrics.counter("transport.dropped.loss").value > 0

    def test_same_scenario_without_retries_loses_requests(self):
        harness = run_workload(max_attempts=1)
        metrics = harness.system.metrics
        completed = metrics.counter("request.completed").value
        dead = len(harness.reliability.dead_letters)
        assert dead > 0
        assert completed < 30
        assert completed + dead == 30
        assert metrics.counter("request.retried").value == 0

    def test_shedding_workload_conserves_and_redirects(self):
        # The DES mirror of the flash-crowd path: servers refuse a
        # fraction of GETs with OVERLOAD (+ hint when a sibling replica
        # exists), and every refusal either lands elsewhere or ends in
        # shed_letters — never vanishes.
        harness = ScenarioHarness(Scenario(m=4, b=1, seed=3))
        harness.apply(ScenarioEvent("insert", {"file": "f0"}))
        harness.apply(ScenarioEvent("replicate", {"file": "f0"}))
        applied = harness.apply(ScenarioEvent("reliable_workload", {
            "requests": 40,
            "loss_rate": 0.0,
            "max_attempts": 4,
            "timeout": 0.05,
            "shed_rate": 0.5,
            "seed": 11,
        }))
        assert applied
        tracker = harness.reliability
        metrics = harness.system.metrics
        assert metrics.counter("request.overloads").value > 0
        assert tracker.inflight_count == 0
        assert tracker.completed + len(tracker.dead_letters) + len(
            tracker.shed_letters
        ) == 40
        # With a replica available, redirect hints fire at least once.
        assert metrics.counter("request.rerouted").value > 0

    def test_dead_entries_rerouted_to_live_ancestors(self):
        harness = ScenarioHarness(Scenario(m=4, b=1, seed=3, dead=[2, 5, 9]))
        harness.apply(ScenarioEvent("insert", {"file": "f0"}))
        harness.apply(ScenarioEvent("reliable_workload", {
            "requests": 20, "loss_rate": 0.0, "max_attempts": 6,
            "entries": "all", "seed": 4,
        }))
        metrics = harness.system.metrics
        assert metrics.counter("request.completed").value == 20
        assert metrics.counter("request.rerouted").value > 0
        assert harness.reliability.dead_letters == []


class TestSeedStability:
    def test_identical_seeds_identical_retry_schedule_and_metrics(self):
        def run():
            harness = ScenarioHarness(Scenario(m=4, b=1, seed=3))
            harness.apply(ScenarioEvent("insert", {"file": "f0"}))
            harness.apply(ScenarioEvent("reliable_workload", {
                "requests": 20, "loss_rate": 0.25, "max_attempts": 6,
                "seed": 7,
            }))
            # request_ids come from a process-global counter, so compare
            # schedules by (time, attempt, entry, file) — never by id.
            schedule = [
                (r.time, r.data["attempt"], r.data["entry"], r.data["file"])
                for r in harness.tracer.of_kind("retry")
            ]
            return schedule, harness.system.metrics.snapshot()

        schedule_a, snapshot_a = run()
        schedule_b, snapshot_b = run()
        assert schedule_a, "scenario produced no retries — not a real check"
        assert schedule_a == schedule_b
        assert snapshot_equal(snapshot_a, snapshot_b)

    def test_different_workload_seed_changes_schedule(self):
        # The workload seed draws (name, entry) per request; loss and
        # jitter ride the scenario seed, so the *entries* must differ.
        def run(seed):
            harness = ScenarioHarness(Scenario(m=4, b=1, seed=3))
            harness.apply(ScenarioEvent("insert", {"file": "f0"}))
            harness.apply(ScenarioEvent("reliable_workload", {
                "requests": 20, "loss_rate": 0.25, "max_attempts": 6,
                "seed": seed,
            }))
            return [
                (r.time, r.data["attempt"], r.data["entry"])
                for r in harness.tracer.of_kind("retry")
            ]

        assert run(7) != run(8)


@pytest.mark.fuzz
class TestLifecycleProperty:
    @given(
        loss=st.floats(min_value=0.0, max_value=0.9),
        shed=st.floats(min_value=0.0, max_value=0.6),
        stale=st.floats(min_value=0.0, max_value=1.0),
        max_attempts=st.integers(min_value=1, max_value=6),
        requests=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_get_completes_or_dead_letters_exactly_once(
        self, loss, shed, stale, max_attempts, requests, seed
    ):
        harness = ScenarioHarness(Scenario(m=4, b=1, seed=3))
        harness.apply(ScenarioEvent("insert", {"file": "f0"}))
        harness.apply(ScenarioEvent("insert", {"file": "f1"}))
        # A little carnage first: with dead PIDs in the space, shed
        # redirects can name corpses (``stale_hint_rate``) and some
        # entries="all" requests enter at dead nodes — the churn-loss
        # terminal joins the partition.
        harness.apply(ScenarioEvent("fail", {"pid": 6}))
        harness.apply(ScenarioEvent("fail", {"pid": 11}))
        applied = harness.apply(ScenarioEvent("reliable_workload", {
            "requests": requests,
            "loss_rate": round(loss, 3),
            "max_attempts": max_attempts,
            "timeout": 0.05,
            "entries": "all",
            "shed_rate": round(shed, 3),
            "stale_hint_rate": round(stale, 3),
            "seed": seed,
        }))
        assert applied
        tracker = harness.reliability
        assert tracker.inflight_count == 0
        assert tracker.issued == requests
        terminals = (
            tracker.completed
            + len(tracker.dead_letters)
            + len(tracker.shed_letters)
            + len(tracker.churn_letters)
        )
        assert terminals == requests
        assert len(tracker.churn_letters) == tracker.churn_lost
        dead_ids = [letter.request_id for letter in tracker.dead_letters]
        shed_ids = [letter.request_id for letter in tracker.shed_letters]
        churn_ids = [letter.request_id for letter in tracker.churn_letters]
        for ids in (dead_ids, shed_ids, churn_ids):
            assert len(ids) == len(set(ids))  # never twice
            assert not set(ids) & tracker.completed_ids  # never both
        assert not set(dead_ids) & set(shed_ids)  # one terminal each
        assert not set(churn_ids) & (set(dead_ids) | set(shed_ids))
        letters = (
            *tracker.dead_letters, *tracker.shed_letters,
            *tracker.churn_letters,
        )
        for letter in letters:
            assert 1 <= len(letter.attempts) <= letter.budget
        # A stale hint is never fired at the corpse: every dodge either
        # rerouted (consuming budget) or churn-lost the request.
        if tracker.stale_hints:
            assert stale > 0.0


class TestDesIntegration:
    def test_lossy_des_run_conserves_requests(self):
        config = ReliabilityConfig(loss_rate=0.3, timeout=1.0, max_attempts=6)
        n = 1 << 4
        experiment = DesExperiment(
            m=4, target=0, entry_rates=np.full(n, 40.0 / n), seed=2,
            loss_rate=config.loss_rate, retry=config.policy(),
        )
        result = experiment.run(1.0, settle=config.settle_time())
        tracker = experiment.reliability
        assert tracker is not None
        assert result.requests_sent == tracker.issued
        assert tracker.issued == (
            result.requests_completed
            + tracker.inflight_count
            + result.dead_letters
        )
        assert result.requests_completed > 0
        assert result.requests_retried > 0  # loss 0.3 must force retries

    def test_without_retry_layer_driver_unchanged(self):
        n = 1 << 4
        experiment = DesExperiment(
            m=4, target=0, entry_rates=np.full(n, 40.0 / n), seed=2,
        )
        result = experiment.run(1.0)
        assert experiment.reliability is None
        assert result.requests_completed == 0 and result.dead_letters == 0
        assert result.requests_served > 0


class TestReliabilityConfig:
    def test_rejects_bad_loss_rate(self):
        with pytest.raises(ConfigurationError, match="loss_rate"):
            ReliabilityConfig(loss_rate=1.0)

    def test_rejects_bad_policy_knobs(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            ReliabilityConfig(max_attempts=0)

    def test_settle_time_covers_full_retry_chain(self):
        config = ReliabilityConfig(
            timeout=0.25, max_attempts=4, backoff_base=0.05,
            backoff_factor=2.0, jitter=0.1,
        )
        worst_chain = 4 * 0.25 + (0.05 + 0.1 + 0.2) * 1.1
        assert config.settle_time() >= worst_chain

    def test_policy_round_trip(self):
        config = ReliabilityConfig(timeout=0.5, max_attempts=2)
        policy = config.policy()
        assert policy.timeout == 0.5 and policy.max_attempts == 2
