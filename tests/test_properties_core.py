"""Property-based tests (hypothesis) for the core tree algebra.

These encode the paper's properties as universally-quantified laws and
let hypothesis hunt for counterexamples across widths and identifiers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import vid as V
from repro.core.bits import complement, leading_ones, mask
from repro.core.children import advanced_children_list
from repro.core.liveness import SetLiveness
from repro.core.routing import resolve_route, storage_node
from repro.core.tree import LookupTree

widths = st.integers(min_value=1, max_value=10)


@st.composite
def width_and_vid(draw):
    m = draw(widths)
    v = draw(st.integers(min_value=0, max_value=(1 << m) - 1))
    return m, v


@st.composite
def width_root_pid(draw):
    m = draw(widths)
    r = draw(st.integers(min_value=0, max_value=(1 << m) - 1))
    pid = draw(st.integers(min_value=0, max_value=(1 << m) - 1))
    return m, r, pid


@st.composite
def tree_with_liveness(draw, min_live=1):
    m = draw(st.integers(min_value=2, max_value=7))
    r = draw(st.integers(min_value=0, max_value=(1 << m) - 1))
    n = 1 << m
    live = draw(
        st.sets(
            st.integers(min_value=0, max_value=n - 1), min_size=min_live, max_size=n
        )
    )
    return LookupTree(r, m), SetLiveness(m, live)


class TestVidLaws:
    @given(width_and_vid())
    def test_parent_inverts_children(self, mv):
        m, v = mv
        for c in V.children_vids(v, m):
            assert V.parent_vid(c, m) == v

    @given(width_and_vid())
    def test_child_count_is_leading_ones(self, mv):
        m, v = mv
        assert len(V.children_vids(v, m)) == leading_ones(v, m)

    @given(width_and_vid())
    def test_subtree_size_is_power_of_two(self, mv):
        m, v = mv
        size = V.subtree_size(v, m)
        assert size & (size - 1) == 0

    @given(width_and_vid())
    def test_subtree_decomposition(self, mv):
        # subtree(v) = {v} ∪ disjoint union of children subtrees.
        m, v = mv
        members = set(V.iter_subtree(v, m))
        assert v in members
        union = {v}
        for c in V.children_vids(v, m):
            child_members = set(V.iter_subtree(c, m))
            assert union.isdisjoint(child_members)
            union |= child_members
        assert union == members

    @given(width_and_vid())
    def test_membership_closed_form(self, mv):
        m, v = mv
        members = set(V.iter_subtree(v, m))
        for w in range(1 << m):
            assert V.in_subtree(w, v, m) == (w in members)

    @given(width_and_vid())
    def test_path_reaches_root_in_depth_steps(self, mv):
        m, v = mv
        path = V.path_to_root(v, m)
        assert path[-1] == mask(m)
        assert len(path) - 1 == V.depth(v, m) <= m

    @given(width_and_vid())
    def test_property3(self, mv):
        # Numerically larger VID never has a smaller subtree.
        m, v = mv
        if v > 0:
            assert V.subtree_size(v, m) >= V.subtree_size(v - 1, m)


class TestMappingLaws:
    @given(width_root_pid())
    def test_pid_vid_involution(self, mrp):
        m, r, pid = mrp
        assert V.vid_to_pid(V.pid_to_vid(pid, r, m), r, m) == pid

    @given(width_root_pid())
    def test_root_maps_to_all_ones(self, mrp):
        m, r, _ = mrp
        assert V.pid_to_vid(r, r, m) == mask(m)

    @given(width_root_pid())
    def test_mapping_is_xor_with_complement(self, mrp):
        m, r, pid = mrp
        assert V.pid_to_vid(pid, r, m) == pid ^ complement(r, m)


class TestRoutingLaws:
    @given(tree_with_liveness())
    @settings(max_examples=60)
    def test_routes_end_at_storage_node(self, tl):
        tree, liveness = tl
        home = storage_node(tree, liveness)
        for entry in liveness.live_pids():
            route = resolve_route(tree, entry, liveness)
            assert route[-1] == home
            assert all(liveness.is_live(p) for p in route)

    @given(tree_with_liveness())
    @settings(max_examples=60)
    def test_routes_never_revisit(self, tl):
        tree, liveness = tl
        for entry in liveness.live_pids():
            route = resolve_route(tree, entry, liveness)
            assert len(route) == len(set(route))

    @given(tree_with_liveness())
    @settings(max_examples=60)
    def test_climb_is_vid_increasing(self, tl):
        # Every hop before the final storage jump strictly increases VID.
        tree, liveness = tl
        for entry in liveness.live_pids():
            route = resolve_route(tree, entry, liveness)
            vids = [tree.vid_of(p) for p in route]
            climb = vids[:-1] if len(vids) >= 2 and vids[-1] < vids[-2] else vids
            assert all(a < b for a, b in zip(climb, climb[1:]))


class TestChildrenListLaws:
    @given(tree_with_liveness(min_live=2))
    @settings(max_examples=60)
    def test_advanced_list_is_live_fringe(self, tl):
        # Every list member is live, lies strictly inside k's subtree,
        # and no member is an ancestor of another.
        tree, liveness = tl
        for k in liveness.live_pids():
            lst = advanced_children_list(tree, k, liveness)
            assert len(lst) == len(set(lst))
            for pid in lst:
                assert liveness.is_live(pid)
                assert tree.in_subtree(pid, k) and pid != k
            for a in lst:
                for w in lst:
                    assert a == w or not tree.is_ancestor(a, w)

    @given(tree_with_liveness(min_live=2))
    @settings(max_examples=60)
    def test_every_live_descendant_is_covered(self, tl):
        # Each live strict descendant of k lies in exactly one list
        # member's subtree.
        tree, liveness = tl
        for k in liveness.live_pids():
            lst = advanced_children_list(tree, k, liveness)
            for w in liveness.live_pids():
                if w == k or not tree.in_subtree(w, k):
                    continue
                covering = [c for c in lst if c == w or tree.is_ancestor(c, w)]
                assert len(covering) == 1
