"""Unit tests for analysis: results, tables, shape statistics."""

import pytest

from repro.analysis import (
    SweepResult,
    dominates,
    max_relative_spread,
    mean_ratio,
    mostly_monotonic,
    render_kv,
    render_sparkline,
    render_table,
    summarize,
)


class TestSweepResult:
    def make(self):
        sweep = SweepResult("demo", "rate", "replicas")
        for x, y in ((1000, 10), (2000, 22)):
            sweep.add("lesslog", x, y)
        for x, y in ((1000, 40), (2000, 95)):
            sweep.add("random", x, y)
        return sweep

    def test_xs_and_value(self):
        sweep = self.make()
        assert sweep.xs() == [1000.0, 2000.0]
        assert sweep.value("lesslog", 2000) == 22

    def test_value_missing_raises(self):
        with pytest.raises(KeyError):
            self.make().value("lesslog", 999)

    def test_totals(self):
        assert self.make().totals() == {"lesslog": 32.0, "random": 135.0}

    def test_rows_aligned(self):
        headers, rows = self.make().to_rows()
        assert headers == ["rate", "lesslog", "random"]
        assert rows[0] == ["1000", "10", "40"]

    def test_missing_points_dashed(self):
        sweep = self.make()
        sweep.add("extra", 1500, 3)
        _, rows = sweep.to_rows()
        row_1500 = [r for r in rows if r[0] == "1500"][0]
        assert "-" in row_1500

    def test_csv(self):
        csv = self.make().to_csv()
        assert csv.splitlines()[0] == "rate,lesslog,random"
        assert "1000,10,40" in csv

    def test_render_contains_title_and_notes(self):
        sweep = self.make()
        sweep.notes = "a note"
        text = sweep.render()
        assert "demo" in text and "a note" in text and "lesslog" in text


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["10", "20"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular
        assert lines[1].startswith("|")

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_sparkline_shape(self):
        line = render_sparkline([0, 1, 2, 3, 4])
        assert len(line) == 5
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_empty(self):
        assert render_sparkline([]) == ""

    def test_sparkline_constant(self):
        assert len(set(render_sparkline([5, 5, 5]))) == 1

    def test_sparkline_downsample(self):
        assert len(render_sparkline(list(range(100)), width=10)) == 10

    def test_render_kv(self):
        text = render_kv({"alpha": 1, "b": "two"})
        lines = text.splitlines()
        assert len(lines) == 2
        assert ":" in lines[0]
        assert render_kv({}) == ""


class TestStats:
    def test_dominates(self):
        assert dominates([1, 2], [2, 3])
        assert not dominates([3, 2], [2, 3])
        assert dominates([2.1, 2], [2, 3], slack=0.2)

    def test_dominates_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates([1], [1, 2])

    def test_mostly_monotonic(self):
        assert mostly_monotonic([1, 2, 3, 4])
        assert mostly_monotonic([1, 2, 1.95, 4], tolerance=0.1)
        assert not mostly_monotonic([10, 1, 10])
        assert mostly_monotonic([5])

    def test_max_relative_spread(self):
        spread = max_relative_spread([[10, 20], [12, 22], [11, 18]])
        assert 0 < spread < 0.3
        assert max_relative_spread([[5, 5], [5, 5]]) == 0.0

    def test_max_relative_spread_needs_2d(self):
        with pytest.raises(ValueError):
            max_relative_spread([1, 2, 3])

    def test_mean_ratio(self):
        assert mean_ratio([2, 4], [1, 2]) == 2.0
        assert mean_ratio([2, 9], [1, 0]) == 2.0  # zero denom skipped

    def test_mean_ratio_all_zero_denoms(self):
        with pytest.raises(ValueError):
            mean_ratio([1], [0])

    def test_summarize(self):
        s = summarize([1, 2, 3])
        assert s["min"] == 1 and s["max"] == 3 and s["mean"] == 2
