"""Unit + integration tests for the fluid engine (repro.engine.fluid)."""

import random

import numpy as np
import pytest

from repro.baselines import LessLogPolicy, LogBasedPolicy, RandomPolicy
from repro.core.errors import ConfigurationError
from repro.core.liveness import AllLive, SetLiveness
from repro.core.tree import LookupTree
from repro.engine.fluid import FluidSimulation
from repro.workloads import LocalityDemand, UniformDemand


def make_sim(m=4, r=4, total_rate=1000.0, capacity=100.0, dead=(), demand=None, seed=0):
    tree = LookupTree(r, m)
    liveness = SetLiveness.all_but(m, dead=dead) if dead else AllLive(m)
    demand = demand if demand is not None else UniformDemand()
    rates = demand.rates(total_rate, liveness)
    return FluidSimulation(
        tree, liveness, rates, capacity=capacity, rng=random.Random(seed)
    )


class TestFlowComputation:
    def test_single_holder_absorbs_everything(self):
        sim = make_sim(total_rate=160.0)
        flows = sim.compute_flows()
        assert flows.served == {4: pytest.approx(160.0)}

    def test_flow_conservation_with_replicas(self):
        sim = make_sim(total_rate=160.0)
        sim.holders.update({5, 6})
        flows = sim.compute_flows()
        assert flows.total_served() == pytest.approx(160.0)
        # P(5) heads the biggest subtree (8 nodes at 10 req/s each).
        assert flows.served[5] == pytest.approx(80.0)
        assert flows.served[6] == pytest.approx(40.0)
        assert flows.served[4] == pytest.approx(40.0)

    def test_forwarder_attribution(self):
        sim = make_sim(total_rate=160.0)
        flows = sim.compute_flows()
        fw = flows.forwarders[4]
        # Direct arrivals at the root plus its four children-list members.
        assert fw[-1] == pytest.approx(10.0)
        assert set(fw) == {-1, 5, 6, 0, 12}
        # The biggest child forwards the most (Property 3 in action).
        assert fw[5] == pytest.approx(80.0)
        assert fw[12] == pytest.approx(10.0)

    def test_dead_target_flows_reach_storage_node(self):
        # P(4), P(5) dead: the file lives at P(6) and all flow lands there.
        sim = make_sim(total_rate=140.0, dead=(4, 5))
        assert sim.home == 6
        flows = sim.compute_flows()
        assert flows.served == {6: pytest.approx(140.0)}

    def test_entry_rate_on_dead_node_rejected(self):
        tree = LookupTree(4, 4)
        liveness = SetLiveness.all_but(4, dead=[3])
        rates = np.full(16, 1.0)
        with pytest.raises(ConfigurationError):
            FluidSimulation(tree, liveness, rates, capacity=10.0)

    def test_home_must_hold_copy(self):
        tree = LookupTree(4, 4)
        liveness = AllLive(4)
        rates = UniformDemand().rates(16.0, liveness)
        with pytest.raises(ConfigurationError):
            FluidSimulation(tree, liveness, rates, capacity=10.0, holders={5})


class TestHalvingClaim:
    def test_first_replication_halves_root_load(self):
        # §1: "each replication is guaranteed to reduce the workload of
        # the replicating node by half if requests are evenly distributed."
        sim = make_sim(m=6, r=13, total_rate=640.0, capacity=100.0)
        before = sim.compute_flows().served[13]
        target = LessLogPolicy().choose(
            sim.tree, 13, sim.liveness, sim.holders, _ctx()
        )
        sim.holders.add(target)
        after = sim.compute_flows().served[13]
        assert after == pytest.approx(before / 2)

    def test_successive_replications_halve_again(self):
        sim = make_sim(m=6, r=13, total_rate=640.0)
        load = sim.compute_flows().served[13]
        for expected_fraction in (0.5, 0.25, 0.125):
            target = LessLogPolicy().choose(
                sim.tree, 13, sim.liveness, sim.holders, _ctx()
            )
            sim.holders.add(target)
            assert sim.compute_flows().served[13] == pytest.approx(
                load * expected_fraction
            )


def _ctx():
    from repro.baselines.base import PlacementContext

    return PlacementContext(rng=random.Random(0))


class TestBalance:
    def test_already_balanced_no_replicas(self):
        sim = make_sim(total_rate=50.0, capacity=100.0)
        result = sim.balance(LessLogPolicy())
        assert result.replicas_created == 0
        assert result.balanced

    def test_balance_terminates_and_clears_overload(self):
        sim = make_sim(m=6, total_rate=2000.0, capacity=100.0, r=13)
        result = sim.balance(LessLogPolicy())
        assert result.balanced
        assert result.flows.max_served() <= 100.0
        assert result.replicas_created >= 19  # ≥ total/capacity - 1

    def test_balance_with_random_policy(self):
        sim = make_sim(m=6, total_rate=1000.0, capacity=100.0, r=13, seed=7)
        result = sim.balance(RandomPolicy())
        assert result.balanced

    def test_balance_with_logbased_policy(self):
        sim = make_sim(m=6, total_rate=1000.0, capacity=100.0, r=13)
        result = sim.balance(LogBasedPolicy())
        assert result.balanced

    def test_lesslog_beats_random(self):
        created = {}
        for name, policy in (("lesslog", LessLogPolicy()), ("random", RandomPolicy())):
            sim = make_sim(m=8, total_rate=3000.0, capacity=100.0, r=77, seed=3)
            created[name] = sim.balance(policy).replicas_created
        assert created["lesslog"] < created["random"]

    def test_logbased_never_worse_under_locality(self):
        created = {}
        demand = LocalityDemand(seed=5)
        for name, policy in (
            ("lesslog", LessLogPolicy()),
            ("log-based", LogBasedPolicy()),
        ):
            sim = make_sim(
                m=8, total_rate=3000.0, capacity=100.0, r=77, demand=demand
            )
            created[name] = sim.balance(policy).replicas_created
        assert created["log-based"] <= created["lesslog"]

    def test_lesslog_equals_logbased_under_uniform(self):
        # Under even demand the most-offspring child IS the
        # most-forwarding child, so the two policies coincide.
        created = {}
        for name, policy in (
            ("lesslog", LessLogPolicy()),
            ("log-based", LogBasedPolicy()),
        ):
            sim = make_sim(m=8, total_rate=2000.0, capacity=100.0, r=77)
            created[name] = sim.balance(policy).replicas_created
        assert created["lesslog"] == created["log-based"]

    def test_balance_with_dead_nodes(self):
        sim = make_sim(m=6, total_rate=1500.0, capacity=100.0, r=13, dead=(13, 9))
        result = sim.balance(LessLogPolicy())
        assert result.balanced

    def test_unresolvable_direct_load_reported(self):
        # A single live node: all demand is direct, no offload possible.
        tree = LookupTree(0, 3)
        liveness = SetLiveness(3, live=[5])
        rates = np.zeros(8)
        rates[5] = 500.0
        sim = FluidSimulation(tree, liveness, rates, capacity=100.0)
        result = sim.balance(LessLogPolicy())
        assert result.unresolved == [5]
        assert not result.balanced

    def test_placements_record_round_and_source(self):
        sim = make_sim(m=6, total_rate=800.0, capacity=100.0, r=13)
        result = sim.balance(LessLogPolicy())
        assert all(p.round >= 1 for p in result.placements)
        assert all(p.target in result.holders for p in result.placements)


class TestPruning:
    def test_prune_removes_cold_replicas(self):
        sim = make_sim(m=6, total_rate=1000.0, capacity=100.0, r=13)
        sim.balance(LessLogPolicy())
        # Drop demand to a trickle: most replicas go cold.
        sim.entry_rates = UniformDemand().rates(50.0, sim.liveness)
        pruned, result = sim.prune_and_rebalance(LessLogPolicy(), threshold=5.0)
        assert pruned > 0
        assert result.balanced

    def test_home_is_never_pruned(self):
        sim = make_sim(m=4, total_rate=10.0, capacity=100.0)
        pruned, _ = sim.prune_and_rebalance(LessLogPolicy(), threshold=50.0)
        assert sim.home in sim.holders

    def test_negative_threshold_rejected(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError):
            sim.prune_and_rebalance(LessLogPolicy(), threshold=-1.0)

    def test_replica_count_excludes_home(self):
        sim = make_sim(m=6, total_rate=1000.0, capacity=100.0, r=13)
        result = sim.balance(LessLogPolicy())
        assert sim.replica_count() == result.replicas_created
