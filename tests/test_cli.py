"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "fig5", "--fast"])
        assert args.experiment == "fig5" and args.fast

    def test_tree_args(self):
        args = build_parser().parse_args(["tree", "--root", "3", "--m", "5", "--dead", "1", "2"])
        assert (args.root, args.m, args.dead) == (3, 5, [1, 2])

    def test_reliability_args(self):
        args = build_parser().parse_args(
            ["reliability", "--m", "4", "--loss-rate", "0.3", "--retries", "6"]
        )
        assert (args.m, args.loss_rate, args.retries) == (4, 0.3, 6)


class TestCommands:
    def test_experiments_lists(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "ext-lookup" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_fast_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        assert main(["run", "ext-lookup", "--fast", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "lookup path length" in out
        assert csv_path.exists()
        assert csv_path.read_text().startswith("N (nodes)")

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "[5, 6, 0, 12]" in out

    def test_tree_render(self, capsys):
        assert main(["tree", "--root", "4", "--m", "4", "--dead", "0", "5"]) == 0
        out = capsys.readouterr().out
        assert "P(4) vid=1111" in out
        assert "[6, 7, 1, 12, 13, 8]" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "invariants hold." in out

    def test_reliability_lossy_run_completes_with_retries(self, capsys):
        code = main([
            "reliability", "--m", "4", "--duration", "1", "--rate", "40",
            "--loss-rate", "0.2", "--retries", "8", "--timeout", "1.0",
            "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0  # every request completed: no dead letters
        assert "issued      36" in out
        assert "completed   36" in out
        assert "dead-letter 0" in out
        assert "retried" in out and "latency" in out
