"""Hypothesis stateful testing of LessLogSystem.

A rule-based state machine drives random interleavings of every public
operation — insert, get, update, replicate, join, leave, fail — against
a model of what must be true, and checks the system-wide invariants
after every step.  This is the heaviest correctness artillery in the
suite: any ordering bug in churn migration or update propagation shows
up as a shrunken counterexample sequence.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.cluster import LessLogSystem
from repro.core.errors import FileNotFoundInSystemError
from repro.node.storage import FileOrigin

M = 4
N = 1 << M


class LessLogMachine(RuleBasedStateMachine):
    system: LessLogSystem

    @initialize(b=st.sampled_from([0, 1]), dead=st.sets(st.integers(0, N - 1), max_size=4))
    def setup(self, b, dead):
        live = set(range(N)) - dead
        if not live:
            live = {0}
        self.system = LessLogSystem(m=M, b=b, live=live, seed=7)
        self.model_files: dict[str, object] = {}   # name -> latest payload
        self.model_versions: dict[str, int] = {}
        self.counter = 0

    # -- helpers ----------------------------------------------------------

    def live_nodes(self):
        return list(self.system.membership.live_pids())

    def file_names(self):
        return sorted(self.model_files)

    # -- rules -------------------------------------------------------------

    @rule()
    def insert_file(self):
        name = f"file-{self.counter}"
        self.counter += 1
        payload = f"v1-of-{name}"
        self.system.insert(name, payload=payload)
        self.model_files[name] = payload
        self.model_versions[name] = 1

    @precondition(lambda self: self.model_files)
    @rule(data=st.data())
    def get_file(self, data):
        name = data.draw(st.sampled_from(self.file_names()), label="name")
        entry = data.draw(st.sampled_from(self.live_nodes()), label="entry")
        if name in self.system.faults:
            return
        result = self.system.get(name, entry=entry)
        assert result.payload == self.model_files[name]
        assert result.version == self.model_versions[name]
        assert result.hops <= M + (1 << self.system.b)

    @precondition(lambda self: self.model_files)
    @rule(data=st.data())
    def update_file(self, data):
        name = data.draw(st.sampled_from(self.file_names()), label="name")
        if name in self.system.faults:
            return
        payload = f"v{self.model_versions[name] + 1}-of-{name}"
        result = self.system.update(name, payload=payload)
        self.model_files[name] = payload
        self.model_versions[name] = result.version
        # Every holder must now carry the new payload.
        for pid in self.system.holders_of(name):
            copy = self.system.stores[pid].get(name, count_access=False)
            assert copy.payload == payload

    @precondition(lambda self: self.model_files)
    @rule(data=st.data())
    def replicate_file(self, data):
        name = data.draw(st.sampled_from(self.file_names()), label="name")
        if name in self.system.faults:
            return
        holders = self.system.holders_of(name)
        if not holders:
            return
        source = data.draw(st.sampled_from(holders), label="source")
        target = self.system.replicate(name, overloaded=source)
        if target is not None:
            assert name in self.system.stores[target]

    @precondition(lambda self: len(list(self.system.membership.live_pids())) < N)
    @rule(data=st.data())
    def join_node(self, data):
        live = set(self.live_nodes())
        candidates = sorted(set(range(N)) - live)
        pid = data.draw(st.sampled_from(candidates), label="pid")
        self.system.join(pid)

    @precondition(lambda self: len(list(self.system.membership.live_pids())) > 2)
    @rule(data=st.data())
    def leave_node(self, data):
        pid = data.draw(st.sampled_from(self.live_nodes()), label="pid")
        self.system.leave(pid)

    @precondition(lambda self: len(list(self.system.membership.live_pids())) > 2)
    @rule(data=st.data())
    def fail_node(self, data):
        pid = data.draw(st.sampled_from(self.live_nodes()), label="pid")
        self.system.fail(pid)

    # -- invariants ----------------------------------------------------------

    @invariant()
    def system_invariants_hold(self):
        if hasattr(self, "system"):
            self.system.check_invariants()

    @invariant()
    def non_faulted_files_are_readable(self):
        if not hasattr(self, "system") or not self.model_files:
            return
        entry = next(iter(self.system.membership.live_pids()))
        for name in self.file_names():
            if name in self.system.faults:
                continue
            try:
                result = self.system.get(name, entry=entry)
            except FileNotFoundInSystemError:
                raise AssertionError(
                    f"{name!r} is not faulted but unreadable from P({entry})"
                )
            assert result.payload == self.model_files[name]

    @invariant()
    def exactly_one_inserted_copy_per_live_subtree(self):
        if not hasattr(self, "system"):
            return
        for name in self.file_names():
            if name in self.system.faults:
                continue
            inserted = [
                pid
                for pid in self.system.holders_of(name)
                if self.system.stores[pid].get(name, count_access=False).origin
                is FileOrigin.INSERTED
            ]
            assert 1 <= len(inserted) <= (1 << self.system.b)


TestLessLogStateful = LessLogMachine.TestCase
TestLessLogStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
