"""Unit tests for VirtualTree / LookupTree (repro.core.tree)."""

import pytest

from repro.core.tree import LookupTree, VirtualTree


class TestVirtualTree:
    def test_validate_small_widths(self):
        for m in (1, 2, 3, 4, 5, 6):
            VirtualTree(m).validate()

    def test_size_and_root(self):
        t = VirtualTree(4)
        assert t.size == 16
        assert t.root == 0b1111

    def test_bfs_visits_everything_once(self):
        t = VirtualTree(5)
        order = list(t.iter_bfs())
        assert len(order) == 32
        assert set(order) == set(range(32))
        assert order[0] == t.root

    def test_bfs_depth_monotone(self):
        t = VirtualTree(4)
        depths = [t.depth(v) for v in t.iter_bfs()]
        assert depths == sorted(depths)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            VirtualTree(0)


class TestLookupTreeMapping:
    def test_root_is_its_own_pid(self):
        for r in range(16):
            assert LookupTree(r, 4).vid_of(r) == 0b1111

    def test_xor_key_is_complement(self):
        assert LookupTree(4, 4).xor_key == 0b1011

    def test_pid_vid_roundtrip(self):
        t = LookupTree(9, 4)
        for pid in range(16):
            assert t.pid_of(t.vid_of(pid)) == pid

    def test_rejects_out_of_range_root(self):
        with pytest.raises(ValueError):
            LookupTree(16, 4)


class TestLookupTreeStructure:
    """The paper's Figure 2: the lookup tree of P(4) in a 16-node system."""

    @pytest.fixture
    def tree(self):
        return LookupTree(4, 4)

    def test_children_list_of_root(self, tree):
        # §2.2: "the children list of P(4) in Figure 2 is
        # (P(5), P(6), P(0), P(12))".
        assert tree.children(4) == [5, 6, 0, 12]

    def test_routing_example(self, tree):
        # §2.1: P(8) -> P(0) -> P(4).
        assert tree.parent(8) == 0
        assert tree.parent(0) == 4
        assert tree.path_to_root(8) == [8, 0, 4]

    def test_parent_of_root_raises(self, tree):
        with pytest.raises(ValueError):
            tree.parent(4)

    def test_offspring_counts(self, tree):
        # P(5) is VID 1110 (7 offspring); P(6) is VID 1101 (3 offspring).
        assert tree.offspring_count(5) == 7
        assert tree.offspring_count(6) == 3
        assert tree.offspring_count(4) == 15

    def test_subtree_membership(self, tree):
        for pid in tree.iter_subtree(5):
            assert tree.in_subtree(pid, 5)
        assert tree.in_subtree(4, 4)
        assert not tree.in_subtree(4, 5)

    def test_every_pid_routes_to_root(self, tree):
        for pid in range(16):
            assert tree.path_to_root(pid)[-1] == 4

    def test_depth_bounded_by_m(self, tree):
        assert all(tree.depth(pid) <= 4 for pid in range(16))

    def test_ancestors_of_root_empty(self, tree):
        assert tree.ancestors(4) == []

    def test_is_ancestor(self, tree):
        assert tree.is_ancestor(4, 8)
        assert tree.is_ancestor(0, 8)
        assert not tree.is_ancestor(8, 0)
        assert not tree.is_ancestor(8, 8)


class TestRender:
    def test_render_contains_all_pids(self):
        t = LookupTree(4, 3)
        text = t.render()
        for pid in range(8):
            assert f"P({pid})" in text

    def test_render_truncates_large(self):
        t = LookupTree(0, 10)
        assert "too large" in t.render()


class TestCrossRootConsistency:
    def test_all_physical_trees_share_structure(self):
        # The N physical trees are XOR relabelings of one virtual tree:
        # subtree sizes at a given VID are identical across roots.
        m = 4
        for r in (0, 3, 11):
            t = LookupTree(r, m)
            for vid in range(16):
                pid = t.pid_of(vid)
                assert t.subtree_size(pid) == LookupTree(0, m).subtree_size(
                    LookupTree(0, m).pid_of(vid)
                )

    def test_children_of_k_in_tree_of_r(self):
        # Spot-check: children are computed via the VID mapping, so the
        # child PIDs of the same physical node differ across trees.
        t0 = LookupTree(0, 4)
        t4 = LookupTree(4, 4)
        assert t0.children(0) != t4.children(0) or t0.children(0) == []
