"""Unit tests for the bitwise substrate (repro.core.bits)."""

import pytest

from repro.core import bits


class TestMaskAndValidation:
    def test_mask_values(self):
        assert bits.mask(1) == 1
        assert bits.mask(4) == 0b1111
        assert bits.mask(10) == 1023

    def test_width_rejects_zero(self):
        with pytest.raises(ValueError):
            bits.mask(0)

    def test_width_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.check_width(-3)

    def test_width_rejects_bool(self):
        with pytest.raises(ValueError):
            bits.check_width(True)

    def test_width_rejects_huge(self):
        with pytest.raises(ValueError):
            bits.check_width(64)

    def test_check_id_range(self):
        bits.check_id(0, 4)
        bits.check_id(15, 4)
        with pytest.raises(ValueError):
            bits.check_id(16, 4)
        with pytest.raises(ValueError):
            bits.check_id(-1, 4)

    def test_check_id_rejects_bool(self):
        with pytest.raises(ValueError):
            bits.check_id(True, 4)


class TestComplement:
    def test_paper_example(self):
        # The tree of P(4), m=4: complement(4) = 1011 (the XOR key).
        assert bits.complement(4, 4) == 0b1011

    def test_involution(self):
        for m in (1, 3, 4, 7):
            for v in range(1 << m):
                assert bits.complement(bits.complement(v, m), m) == v

    def test_zero_and_full(self):
        assert bits.complement(0, 5) == 0b11111
        assert bits.complement(0b11111, 5) == 0


class TestLeadingOnes:
    @pytest.mark.parametrize(
        "v, m, expected",
        [
            (0b1111, 4, 4),
            (0b1110, 4, 3),
            (0b1101, 4, 2),
            (0b1011, 4, 1),
            (0b0111, 4, 0),
            (0b0000, 4, 0),
            (0b1100, 4, 2),
            (0b1000, 4, 1),
        ],
    )
    def test_examples(self, v, m, expected):
        assert bits.leading_ones(v, m) == expected

    def test_exhaustive_m5(self):
        # Cross-check against a string-based reference implementation.
        for v in range(32):
            s = format(v, "05b")
            expected = len(s) - len(s.lstrip("1"))
            assert bits.leading_ones(v, 5) == expected


class TestTrailingZeros:
    def test_zero_is_full_width(self):
        assert bits.trailing_zeros(0, 6) == 6

    @pytest.mark.parametrize(
        "v, expected", [(1, 0), (2, 1), (4, 2), (12, 2), (8, 3), (5, 0)]
    )
    def test_values(self, v, expected):
        assert bits.trailing_zeros(v, 4) == expected


class TestLeftmostZero:
    def test_position(self):
        assert bits.leftmost_zero_position(0b1101, 4) == 1
        assert bits.leftmost_zero_position(0b0111, 4) == 3
        assert bits.leftmost_zero_position(0b1110, 4) == 0

    def test_root_has_none(self):
        with pytest.raises(ValueError):
            bits.leftmost_zero_position(0b1111, 4)

    def test_set_leftmost_zero_paper_example(self):
        # Paper §2.1: parent of 0110 is 1110 (convert leftmost 0 to 1).
        assert bits.set_leftmost_zero(0b0110, 4) == 0b1110


class TestLowHighBits:
    def test_low_bits(self):
        assert bits.low_bits(0b110101, 3) == 0b101
        assert bits.low_bits(0b110101, 0) == 0

    def test_low_bits_negative_width(self):
        with pytest.raises(ValueError):
            bits.low_bits(5, -1)

    def test_high_bits(self):
        assert bits.high_bits(0b110101, 6, 2) == 0b11
        assert bits.high_bits(0b110101, 6, 0) == 0
        assert bits.high_bits(0b110101, 6, 6) == 0b110101

    def test_high_bits_bad_width(self):
        with pytest.raises(ValueError):
            bits.high_bits(1, 4, 5)


class TestBinaryFormatting:
    def test_to_binary(self):
        assert bits.to_binary(4, 4) == "0100"
        assert bits.to_binary(0, 3) == "000"

    def test_from_binary(self):
        assert bits.from_binary("0100") == 4
        assert bits.from_binary("1_011") == 11

    def test_from_binary_rejects_junk(self):
        with pytest.raises(ValueError):
            bits.from_binary("01x0")
        with pytest.raises(ValueError):
            bits.from_binary("")

    def test_roundtrip(self):
        for v in range(16):
            assert bits.from_binary(bits.to_binary(v, 4)) == v


class TestPopcount:
    def test_values(self):
        assert bits.popcount(0) == 0
        assert bits.popcount(0b1011) == 3
        assert bits.popcount(0b1111111111) == 10
