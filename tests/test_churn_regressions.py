"""Regression tests for churn bugs found by the stateful machine.

Each test pins a shrunken hypothesis counterexample so the fix can
never silently regress.
"""

import pytest

from repro.cluster import LessLogSystem
from repro.node.storage import FileOrigin


class TestOrphanedReplicaAfterRejoin:
    """Found 2026-07: a failed holder's replicas became unreachable by
    the update broadcast once the holder's identifier rejoined empty."""

    def test_update_reaches_replica_after_fail_rejoin(self):
        sys_ = LessLogSystem(m=4, b=0, live=set(range(16)) - {0}, seed=7)
        name = sys_.psi.find_name_for_target(8)
        sys_.insert(name, payload="v1")
        sys_.join(0)
        sys_.replicate(name, overloaded=8)   # -> P(9)
        sys_.replicate(name, overloaded=9)   # -> below P(9)
        sys_.fail(9)
        sys_.join(9)
        sys_.update(name, payload="v2")
        for pid in sys_.holders_of(name):
            copy = sys_.stores[pid].get(name, count_access=False)
            assert copy.payload == "v2", f"stale copy survived at P({pid})"
        sys_.check_invariants()

    def test_gc_counter_records_collections(self):
        sys_ = LessLogSystem(m=4, b=0, live=set(range(16)) - {0}, seed=7)
        name = sys_.psi.find_name_for_target(8)
        sys_.insert(name)
        sys_.join(0)
        sys_.replicate(name, overloaded=8)
        sys_.replicate(name, overloaded=9)
        sys_.fail(9)
        sys_.join(9)
        assert sys_.metrics.counter("system.orphans_collected").value >= 1


class TestEmptySubtreeRepopulation:
    """Found 2026-07: a subtree whose members all crashed never got its
    inserted copy back when a node later joined into it."""

    def _drain_subtree(self):
        sys_ = LessLogSystem(m=4, b=1, live=set(range(16)) - {0}, seed=7)
        sys_.insert("file-0", payload="v1")
        for pid in (1, 2, 3, 7, 11, 4, 9, 15, 5, 13):
            sys_.fail(pid)
        return sys_

    def test_join_restores_cross_subtree(self):
        sys_ = self._drain_subtree()
        assert sys_.holders_of("file-0") == [8]  # one subtree fully gone
        migrated = sys_.join(1)
        assert "file-0" in migrated
        sys_.check_invariants()
        copy = sys_.stores[1].get("file-0", count_access=False)
        assert copy.origin is FileOrigin.INSERTED
        assert sys_.get("file-0", entry=1).payload == "v1"

    def test_fault_degree_recovers_to_2b(self):
        sys_ = self._drain_subtree()
        sys_.join(1)
        inserted = [
            pid
            for pid in sys_.holders_of("file-0")
            if sys_.stores[pid].get("file-0", count_access=False).origin
            is FileOrigin.INSERTED
        ]
        assert len(inserted) == 2  # full 2^b degree restored

    def test_truly_lost_file_stays_lost_on_join(self):
        # b=0: home crashes with no replica -> lost; a later join of the
        # same identifier must not resurrect a phantom copy.
        sys_ = LessLogSystem.build(m=4)
        name = sys_.psi.find_name_for_target(4)
        sys_.insert(name)
        sys_.fail(4)
        assert name in sys_.faults
        sys_.join(4)
        assert name in sys_.faults
        assert sys_.holders_of(name) == []
        sys_.check_invariants()
